(* Static per-program facts shared by every partial-order reduction in the
   tree: the SC checker's candidate test and the abstract machines'
   independence oracles all ask the same questions — "can any other thread
   still touch this location?", "does this thread still have a
   synchronization-class instruction ahead of it?" — and all of them are
   answerable once per program, not once per state.

   The answers come in two shapes:

   - suffix masks, indexed by a thread's next-instruction index: a 2-bit
     mask per location over the remaining instructions (bit 0: some access
     remains, bit 1: some write remains), for in-order machines whose
     progress is a program counter;
   - whole-thread location bitmasks (bit [j] set iff instruction [j]
     touches the location), for machines whose progress is an
     executed-instruction set (out-of-order issue). *)

type t = {
  instrs : Instr.t array array;  (** per-thread instruction arrays *)
  suffix : int Exp.Smap.t array array;
      (** [suffix.(p).(j)]: location -> 2-bit mask over thread [p]'s
          instructions from index [j] on; bit 0 access, bit 1 write *)
  sync_after : bool array array;
      (** [sync_after.(p).(j)]: a synchronization-class instruction (sync
          load/store/await, RMW, lock) remains at index >= [j] *)
  loc_masks : (int * int) Exp.Smap.t array;
      (** per thread: location -> (access bitmask, write bitmask) over
          instruction indices *)
  loc_ids : int Exp.Smap.t;
      (** location -> dense id, in order of first appearance *)
  iloc : int array array;
      (** [iloc.(p).(j)]: dense id of the location instruction [j] of
          thread [p] touches, or [-1] for fences *)
  suffix_ids : int array array;
      (** [suffix_ids.(p).(j)]: the suffix masks again, 2 bits per dense
          location id (bit [2*id] access, bit [2*id+1] write) — the
          allocation-free fast path for hot per-state queries.  [[||]]
          when the program has too many locations to pack in one word;
          callers must fall back to {!access_remains}/{!write_remains}. *)
}

(* Instructions that commit through a machine's synchronization path
   (atomic-at-memory, reservation-placing, buffer-draining): everything
   except plain data accesses and fences. *)
let is_sync_class = function
  | Instr.Load { kind = Instr.Sync; _ }
  | Instr.Store { kind = Instr.Sync; _ }
  | Instr.Await { kind = Instr.Sync; _ }
  | Instr.Rmw _ | Instr.Lock _ ->
      true
  | Instr.Load _ | Instr.Store _ | Instr.Await _ | Instr.Fence -> false

let of_prog prog =
  let instrs = Array.of_list (List.map Array.of_list (Prog.threads prog)) in
  let suffix =
    Array.map
      (fun ins ->
        let n = Array.length ins in
        let out = Array.make (n + 1) Exp.Smap.empty in
        for j = n - 1 downto 0 do
          let m = out.(j + 1) in
          out.(j) <-
            (match Instr.location ins.(j) with
            | None -> m
            | Some l ->
                let prev = Option.value (Exp.Smap.find_opt l m) ~default:0 in
                let bits = if Instr.is_write ins.(j) then 3 else 1 in
                Exp.Smap.add l (prev lor bits) m)
        done;
        out)
      instrs
  in
  let sync_after =
    Array.map
      (fun ins ->
        let n = Array.length ins in
        let out = Array.make (n + 1) false in
        for j = n - 1 downto 0 do
          out.(j) <- out.(j + 1) || is_sync_class ins.(j)
        done;
        out)
      instrs
  in
  let loc_masks =
    Array.map
      (fun ins ->
        let m = ref Exp.Smap.empty in
        Array.iteri
          (fun j i ->
            match Instr.location i with
            | None -> ()
            | Some l ->
                let a, w =
                  Option.value (Exp.Smap.find_opt l !m) ~default:(0, 0)
                in
                let bit = 1 lsl j in
                m :=
                  Exp.Smap.add l
                    (a lor bit, if Instr.is_write i then w lor bit else w)
                    !m)
          ins;
        !m)
      instrs
  in
  let loc_ids =
    let next = ref 0 in
    Array.fold_left
      (Array.fold_left (fun m i ->
           match Instr.location i with
           | None -> m
           | Some l ->
               if Exp.Smap.mem l m then m
               else begin
                 let id = !next in
                 incr next;
                 Exp.Smap.add l id m
               end))
      Exp.Smap.empty instrs
  in
  let nlocs = Exp.Smap.cardinal loc_ids in
  let iloc =
    Array.map
      (Array.map (fun i ->
           match Instr.location i with
           | None -> -1
           | Some l -> Exp.Smap.find l loc_ids))
      instrs
  in
  let suffix_ids =
    if 2 * nlocs > Sys.int_size - 1 then [||]
    else
      Array.mapi
        (fun p ins ->
          let n = Array.length ins in
          let out = Array.make (n + 1) 0 in
          for j = n - 1 downto 0 do
            let bits =
              if iloc.(p).(j) < 0 then 0
              else
                (if Instr.is_write ins.(j) then 3 else 1)
                lsl (2 * iloc.(p).(j))
            in
            out.(j) <- out.(j + 1) lor bits
          done;
          out)
        instrs
  in
  { instrs; suffix; sync_after; loc_masks; loc_ids; iloc; suffix_ids }

(* The facts depend only on the program; cache them across calls.  An
   [Atomic] so parallel exploration domains can race on it safely — a
   lost update merely recomputes the (immutable) tables. *)
let cache : (Prog.t * t) option Atomic.t = Atomic.make None

let cached prog =
  match Atomic.get cache with
  | Some (p, i) when p == prog -> i
  | Some _ | None ->
      let i = of_prog prog in
      Atomic.set cache (Some (prog, i));
      i

let clamp_index info p j = min j (Array.length info.suffix.(p) - 1)

let suffix_bits info ~p ~j loc =
  let j = clamp_index info p j in
  Option.value (Exp.Smap.find_opt loc info.suffix.(p).(j)) ~default:0

let access_remains info ~p ~j loc = suffix_bits info ~p ~j loc land 1 <> 0
let write_remains info ~p ~j loc = suffix_bits info ~p ~j loc land 2 <> 0

let sync_remains info ~p ~j =
  info.sync_after.(p).(min j (Array.length info.sync_after.(p) - 1))

let loc_bitmasks info ~p loc =
  Option.value (Exp.Smap.find_opt loc info.loc_masks.(p)) ~default:(0, 0)

let has_dense_ids info = Array.length info.suffix_ids > 0
let instr_loc_id info ~p ~j = info.iloc.(p).(j)

let suffix_id_bits info ~p ~j id =
  let j = min j (Array.length info.suffix_ids.(p) - 1) in
  info.suffix_ids.(p).(j) lsr (2 * id)

let access_remains_id info ~p ~j id =
  suffix_id_bits info ~p ~j id land 1 <> 0

let write_remains_id info ~p ~j id =
  suffix_id_bits info ~p ~j id land 2 <> 0
