(** Atomic, in-program-order small-step semantics — the paper's "idealized
    architecture" where all memory accesses execute atomically and in
    program order. *)

module Smap = Exp.Smap

type thread_state = { next : int; regs : int Smap.t }
type state = { memory : int Smap.t; threads : thread_state array }

val initial : Prog.t -> state
val read_mem : int Smap.t -> string -> int
val thread_done : Prog.t -> state -> int -> bool
val all_done : Prog.t -> state -> bool
val next_instr : Prog.t -> state -> int -> Instr.t option

val step : Prog.t -> state -> int -> state option
(** [step prog s p] executes the next instruction of thread [p] atomically.
    Returns [None] if [p] has finished, or if its next instruction is a
    blocked [Await]/[Lock] that cannot currently succeed. *)

val final_of_state : state -> Final.t

type key = int array * (string * int) list * (string * int) list array

val key_of_state : state -> key
(** Canonical structural key for memoizing state exploration. *)

val key_hash : key -> int
val key_equal : key -> key -> bool
(** Hash/equality for {!key}, suitable for [Hashtbl.Make] — structural, no
    marshalling. *)
