(* Definition 2, executable:

     "Hardware is weakly ordered with respect to a synchronization model if
      and only if it appears sequentially consistent to all software that
      obey the synchronization model."

   A synchronization model is a predicate on programs; hardware is any
   source of outcome sets (an abstract machine, an axiomatic model, or a
   timing simulator's reachable results).  "Appears sequentially
   consistent" for one program means the hardware's outcome set is included
   in the SC outcome set.  Definition 2 itself quantifies over all
   programs; [verify] checks it over a finite corpus and reports every
   counterexample, which is the strongest mechanical statement available. *)

type sync_model = { model_name : string; obeys : Prog.t -> bool }

let drf0 = { model_name = "DRF0"; obeys = (fun p -> Drf.obeys ~model:Drf.DRF0 p) }
let drf1 = { model_name = "DRF1"; obeys = (fun p -> Drf.obeys ~model:Drf.DRF1 p) }

let unconstrained = { model_name = "all-programs"; obeys = (fun _ -> true) }

(* A synchronization model for fence-based hardware (the RP3 option of
   Section 2.1): the software's obligation is to separate every
   Shasha-Snir delay pair with a fence.  Hardware that respects fences,
   coherence and atomicity then appears sequentially consistent — a second
   instance of Definition 2, with a very different contract than DRF0. *)
let fenced_delays =
  {
    model_name = "fenced-delays";
    obeys =
      (fun prog ->
        let evts = Evts.of_prog prog in
        let fence_between (a, b) =
          let ea = Evts.event evts a and eb = Evts.event evts b in
          List.exists
            (fun f ->
              let ef = Evts.event evts f in
              ef.Event.proc = ea.Event.proc
              && ef.Event.index > ea.Event.index
              && ef.Event.index < eb.Event.index)
            (Evts.fences evts)
        in
        List.for_all fence_between (Delay_set.delay_pairs evts));
  }

type hardware = { hw_name : string; outcomes : Prog.t -> Final.Set.t }

let of_machine ?(domains = 1) m =
  {
    hw_name = Machines.name m;
    outcomes =
      (fun prog ->
        Explore.bounded_value
          (Machines.explore ~domains m prog).Explore.result);
  }

let of_model m = { hw_name = Models.name m; outcomes = Models.outcomes m }

(* [por:false] forces the unreduced SC sweep as the reference set — the
   CLI's --no-por escape hatch; the sets are identical (checked
   differentially), only the enumeration strategy differs. *)
let appears_sc ?(por = true) hw prog =
  let sc =
    if por then Sc.outcomes_cached prog else Sc.outcomes ~reduce:false prog
  in
  Final.Set.subset (hw.outcomes prog) sc

type verdict = {
  program : Prog.t;
  obeys_model : bool;
  sc_appearance : bool;
  ok : bool;  (** [obeys_model] implies [sc_appearance] *)
}

type report = {
  hardware : string;
  model : string;
  verdicts : verdict list;
  weakly_ordered : bool;  (** no counterexample in the corpus *)
}

let verify ?por ~hw ~model corpus =
  let verdicts =
    List.map
      (fun program ->
        let obeys_model = model.obeys program in
        let sc_appearance = appears_sc ?por hw program in
        { program; obeys_model; sc_appearance; ok = (not obeys_model) || sc_appearance })
      corpus
  in
  {
    hardware = hw.hw_name;
    model = model.model_name;
    verdicts;
    weakly_ordered = List.for_all (fun v -> v.ok) verdicts;
  }

let counterexamples report =
  List.filter (fun v -> not v.ok) report.verdicts

(* Genuinely weaker than SC: some corpus program exhibits a non-SC outcome.
   (A machine could trivially be weakly ordered by being SC.) *)
let weaker_than_sc ~hw corpus =
  List.exists (fun p -> not (appears_sc hw p)) corpus

let pp_verdict ppf v =
  Fmt.pf ppf "%-20s obeys=%-5b appears-SC=%-5b %s" (Prog.name v.program)
    v.obeys_model v.sc_appearance
    (if v.ok then "ok" else "COUNTEREXAMPLE")

let pp_report ppf r =
  Fmt.pf ppf "@[<v>hardware %s w.r.t. %s: %s@,%a@]" r.hardware r.model
    (if r.weakly_ordered then "weakly ordered (on this corpus)"
     else "NOT weakly ordered")
    Fmt.(list ~sep:cut pp_verdict)
    r.verdicts
