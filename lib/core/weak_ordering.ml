(* Definition 2, executable:

     "Hardware is weakly ordered with respect to a synchronization model if
      and only if it appears sequentially consistent to all software that
      obey the synchronization model."

   A synchronization model is a predicate on programs; hardware is any
   source of outcome sets (an abstract machine, an axiomatic model, or a
   timing simulator's reachable results).  "Appears sequentially
   consistent" for one program means the hardware's outcome set is included
   in the SC outcome set.  Definition 2 itself quantifies over all
   programs; [verify] checks it over a finite corpus and reports every
   counterexample, which is the strongest mechanical statement available. *)

type sync_model = { model_name : string; obeys : Prog.t -> bool }

let drf0 = { model_name = "DRF0"; obeys = (fun p -> Drf.obeys ~model:Drf.DRF0 p) }
let drf1 = { model_name = "DRF1"; obeys = (fun p -> Drf.obeys ~model:Drf.DRF1 p) }

let unconstrained = { model_name = "all-programs"; obeys = (fun _ -> true) }

(* A synchronization model for fence-based hardware (the RP3 option of
   Section 2.1): the software's obligation is to separate every
   Shasha-Snir delay pair with a fence.  Hardware that respects fences,
   coherence and atomicity then appears sequentially consistent — a second
   instance of Definition 2, with a very different contract than DRF0. *)
let fenced_delays =
  {
    model_name = "fenced-delays";
    obeys =
      (fun prog ->
        let evts = Evts.of_prog prog in
        let fence_between (a, b) =
          let ea = Evts.event evts a and eb = Evts.event evts b in
          List.exists
            (fun f ->
              let ef = Evts.event evts f in
              ef.Event.proc = ea.Event.proc
              && ef.Event.index > ea.Event.index
              && ef.Event.index < eb.Event.index)
            (Evts.fences evts)
        in
        List.for_all fence_between (Delay_set.delay_pairs evts));
  }

type hardware = { hw_name : string; outcomes : Prog.t -> Final.Set.t }

let of_machine ?(domains = 1) ?(reduce = true) m =
  {
    hw_name = Machines.name m;
    outcomes =
      (fun prog ->
        Explore.bounded_value
          (Machines.explore ~domains ~reduce m prog).Explore.result);
  }

let of_model m = { hw_name = Models.name m; outcomes = Models.outcomes m }

(* [por:false] forces the unreduced SC sweep as the reference set — the
   CLI's --no-por escape hatch; the sets are identical (checked
   differentially), only the enumeration strategy differs. *)
let appears_sc ?(por = true) hw prog =
  let sc =
    if por then Sc.outcomes_cached prog else Sc.outcomes ~reduce:false prog
  in
  Final.Set.subset (hw.outcomes prog) sc

type coverage = Exhaustive | Bounded of { reason : string; degraded : bool }

let coverage_string = function
  | Exhaustive -> "exhaustive"
  | Bounded { reason; degraded } ->
      Printf.sprintf "bounded:%s%s" reason (if degraded then "+degraded" else "")

type verdict = {
  program : Prog.t;
  obeys_model : bool;
  sc_appearance : bool;
  ok : bool;  (** [obeys_model] implies [sc_appearance] *)
  coverage : coverage;
  states : int;
  reduced : bool;
  degraded_at : int option;
  sym_group : int;
  sym_hits : int;
  spilled_runs : int;
  spilled_keys : int;
}

type report = {
  hardware : string;
  model : string;
  verdicts : verdict list;
  weakly_ordered : bool;  (** no counterexample in the corpus *)
}

let report_exhaustive r =
  List.for_all (fun v -> v.coverage = Exhaustive) r.verdicts

let verify ?(por = true) ~hw ~model corpus =
  let verdicts =
    List.map
      (fun program ->
        let obeys_model = model.obeys program in
        let sc_appearance = appears_sc ~por hw program in
        {
          program;
          obeys_model;
          sc_appearance;
          ok = (not obeys_model) || sc_appearance;
          coverage = Exhaustive;
          states = 0;
          reduced = por;
          degraded_at = None;
          sym_group = 1;
          sym_hits = 0;
          spilled_runs = 0;
          spilled_keys = 0;
        })
      corpus
  in
  {
    hardware = hw.hw_name;
    model = model.model_name;
    verdicts;
    weakly_ordered = List.for_all (fun v -> v.ok) verdicts;
  }

let counterexamples report =
  List.filter (fun v -> not v.ok) report.verdicts

(* Genuinely weaker than SC: some corpus program exhibits a non-SC outcome.
   (A machine could trivially be weakly ordered by being SC.) *)
let weaker_than_sc ~hw corpus =
  List.exists (fun p -> not (appears_sc hw p)) corpus

let pp_verdict ppf v =
  Fmt.pf ppf "%-20s obeys=%-5b appears-SC=%-5b %s%s%s" (Prog.name v.program)
    v.obeys_model v.sc_appearance
    (if v.ok then "ok" else "COUNTEREXAMPLE")
    (match v.coverage with
    | Exhaustive -> ""
    | Bounded _ as c -> " [" ^ coverage_string c ^ "]")
    (if v.reduced then "" else " [unreduced]")

let pp_report ppf r =
  Fmt.pf ppf "@[<v>hardware %s w.r.t. %s: %s@,%a@]" r.hardware r.model
    (if r.weakly_ordered then
       if report_exhaustive r then "weakly ordered (on this corpus)"
       else "no counterexample found (BOUNDED coverage on this corpus)"
     else "NOT weakly ordered")
    Fmt.(list ~sep:cut pp_verdict)
    r.verdicts

(* --- resumable verification ------------------------------------------------ *)

(* [verify_machine] is [verify] for an abstract machine, with the
   resilience layer threaded through: budgets stop the sweep at a safe
   point, the whole campaign state — finished verdicts, position, and the
   in-flight program's exploration snapshot — is marshalled into one
   CRC-checked checkpoint file (atomically installed), and [~resume]
   restarts from exactly there.  Identity (machine, model, corpus) is
   validated on resume; mismatches raise {!Explore.Resume_rejected},
   never silently explore the wrong campaign. *)

type run_report = {
  report : report;
  suspended : Explore.stop_reason option;
      (** [Some r]: the budget stopped the campaign; the report covers
          only the programs finished so far and a checkpoint (if
          configured) holds the resume point *)
  recovered : bool;
      (** the resume checkpoint came from the [.prev] last-good
          generation (the primary was corrupt or missing) *)
}

let prog_fp prog = Format.asprintf "%s|%a" (Prog.name prog) Prog.pp prog

type vckpt = {
  ck_machine : string;
  ck_model : string;
  ck_corpus : string list;  (* program fingerprints, in corpus order *)
  ck_done : verdict list;  (* finished verdicts, in corpus order *)
  ck_pos : int;  (* index of the in-flight program *)
  ck_inner : string option;  (* its framed explore snapshot, if any *)
}

(* "verify2": checkpointed verdicts gained the symmetry/spill detail
   fields; older checkpoints are rejected by kind rather than misread. *)
let verify_kind = "weakord.verify2"

let write_vckpt path ck =
  Snapshot.write_file path
    (Snapshot.frame ~kind:verify_kind
       ~meta:
         (Printf.sprintf "%s vs %s, program %d/%d" ck.ck_machine ck.ck_model
            ck.ck_pos
            (List.length ck.ck_corpus))
       ~payload:(Marshal.to_string ck []))

let load_vckpt path =
  match Snapshot.load path with
  | Error (e, _) ->
      raise
        (Explore.Resume_rejected
           (Printf.sprintf "cannot resume from %s: %s" path
              (Snapshot.error_string e)))
  | Ok { Snapshot.container = c; recovered } ->
      if not (String.equal c.Snapshot.kind verify_kind) then
        raise
          (Explore.Resume_rejected
             (Printf.sprintf "%s holds a %S snapshot, expected %S" path
                c.Snapshot.kind verify_kind));
      let ck =
        try (Marshal.from_string c.Snapshot.payload 0 : vckpt)
        with Failure _ | Invalid_argument _ ->
          raise
            (Explore.Resume_rejected
               (path ^ ": checkpoint payload does not unmarshal"))
      in
      (ck, recovered)

let verify_machine ?(domains = 1) ?fuel ?(por = true) ?(sym = true)
    ?spill_dir ?(spill_threshold = Explore.spill_flush_default) ?budget
    ?checkpoint ?(checkpoint_every = Explore.checkpoint_every_default)
    ?resume ?(obs = Obs.null) ?(on_event = ignore) ~machine ~model corpus =
  let corpus_a = Array.of_list corpus in
  let fps = List.map prog_fp corpus in
  let mname = Machines.name machine in
  let start_pos, done0, inner0, recovered =
    match resume with
    | None -> (0, [], None, false)
    | Some path ->
        let ck, recovered = load_vckpt path in
        if not (String.equal ck.ck_machine mname) then
          raise
            (Explore.Resume_rejected
               (Printf.sprintf
                  "checkpoint is for machine %s, this run verifies %s"
                  ck.ck_machine mname));
        if not (String.equal ck.ck_model model.model_name) then
          raise
            (Explore.Resume_rejected
               (Printf.sprintf
                  "checkpoint is for model %s, this run verifies %s"
                  ck.ck_model model.model_name));
        if ck.ck_corpus <> fps then
          raise
            (Explore.Resume_rejected
               "checkpoint was taken over a different corpus (program \
                fingerprints differ)");
        on_event
          (Printf.sprintf "resuming %s vs %s at program %d/%d%s" mname
             model.model_name ck.ck_pos (List.length fps)
             (if recovered then
                " (recovered from the last-good .prev generation)"
              else ""));
        (ck.ck_pos, ck.ck_done, ck.ck_inner, recovered)
  in
  let done_rev = ref (List.rev done0) in
  let inner_pending = ref inner0 in
  let suspended = ref None in
  let save pos inner =
    match checkpoint with
    | None -> ()
    | Some path ->
        write_vckpt path
          {
            ck_machine = mname;
            ck_model = model.model_name;
            ck_corpus = fps;
            ck_done = List.rev !done_rev;
            ck_pos = pos;
            ck_inner = inner;
          }
  in
  let n = Array.length corpus_a in
  let pos = ref start_pos in
  while !suspended = None && !pos < n do
    let program = corpus_a.(!pos) in
    let obeys_model = model.obeys program in
    let rcfg =
      {
        Explore.budget;
        checkpoint_every;
        snapshot_sink =
          (if checkpoint = None then None
           else Some (fun bytes -> save !pos (Some bytes)));
        resume = !inner_pending;
        sym;
        spill_dir;
        spill_threshold;
        obs;
        on_event;
        cancel = None;
      }
    in
    inner_pending := None;
    let r = Machines.explore ~domains ~reduce:por ?fuel ~rcfg machine program in
    match r.Explore.stop with
    | Some reason ->
        (* The engine already handed its final snapshot to the sink, so
           the checkpoint on disk points at this program's frontier. *)
        suspended := Some reason;
        if checkpoint = None then save !pos None
    | None -> (
        let hw_set = Explore.bounded_value r.Explore.result in
        let degraded = r.Explore.stats.Explore.degraded_at <> None in
        let sc_set, sc_complete =
          match budget with
          | None ->
              if por then (Sc.outcomes_cached program, true)
              else (Sc.outcomes ~reduce:false program, true)
          | Some b ->
              (* Deadline only: the SC reference sets are small (they are
                 not what the memory budget protects), and a memory-caused
                 inconclusive suspend here could never progress on
                 resume. *)
              let s, _, complete =
                Sc.explore_within ~reduce:por ~budget:(Budget.deadline_only b)
                  program
              in
              (s, complete)
        in
        let subset = Final.Set.subset hw_set sc_set in
        if (not sc_complete) && not subset then begin
          (* Inconclusive: against a partial SC reference only a positive
             subset test is sound — a missing outcome may be a real
             violation or just missing SC coverage.  Suspend; the resumed
             run (with budget left) redoes this program. *)
          let reason =
            match budget with
            | Some b when Budget.over_deadline b -> Explore.Deadline_exceeded
            | _ -> Explore.Memory_exhausted
          in
          suspended := Some reason;
          save !pos None
        end
        else begin
          (* [subset] is trustworthy here: positive against any sound SC
             superset-of-subset, and a negative (violation) is real even
             degraded — hardware outcomes found are always real. *)
          let coverage =
            if degraded then Bounded { reason = "memory"; degraded = true }
            else if not sc_complete then
              Bounded { reason = "sc-budget"; degraded = false }
            else Exhaustive
          in
          done_rev :=
            {
              program;
              obeys_model;
              sc_appearance = subset;
              ok = (not obeys_model) || subset;
              coverage;
              states = r.Explore.stats.Explore.states_expanded;
              reduced = r.Explore.stats.Explore.por_enabled;
              degraded_at = r.Explore.stats.Explore.degraded_at;
              sym_group = r.Explore.stats.Explore.sym_group;
              sym_hits = r.Explore.stats.Explore.sym_hits;
              spilled_runs = r.Explore.stats.Explore.spilled_runs;
              spilled_keys = r.Explore.stats.Explore.spilled_keys;
            }
            :: !done_rev;
          incr pos;
          save !pos None
        end)
  done;
  let verdicts = List.rev !done_rev in
  {
    report =
      {
        hardware = mname;
        model = model.model_name;
        verdicts;
        weakly_ordered = List.for_all (fun v -> v.ok) verdicts;
      };
    suspended = !suspended;
    recovered;
  }
