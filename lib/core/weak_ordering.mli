(** Definition 2, executable: hardware is weakly ordered with respect to a
    synchronization model iff it appears sequentially consistent to all
    software obeying the model.

    The real definition quantifies over all programs; {!verify} checks it
    over a finite corpus and reports each counterexample. *)

type sync_model = { model_name : string; obeys : Prog.t -> bool }

val drf0 : sync_model
val drf1 : sync_model

val unconstrained : sync_model
(** Every program obeys it: being weakly ordered w.r.t. this model is being
    sequentially consistent. *)

val fenced_delays : sync_model
(** A program obeys it iff every Shasha–Snir delay pair is separated by a
    fence — the contract for fence-based hardware like the RP3 option or
    the naive machines. *)

type hardware = { hw_name : string; outcomes : Prog.t -> Final.Set.t }

val of_machine : ?domains:int -> Machines.t -> hardware
(** [?domains] (default 1) is forwarded to {!Machines.explore}: the
    hardware's outcome sets are computed with that many parallel
    domains.  The sets themselves are identical for every value. *)

val of_model : Models.t -> hardware

val appears_sc : ?por:bool -> hardware -> Prog.t -> bool
(** The hardware's outcomes for the program are a subset of the SC
    outcomes.  [por] (default [true]) selects the partial-order-reduced
    SC enumeration; [~por:false] forces the unreduced sweep (the CLI's
    [--no-por]) — same set, different strategy. *)

type verdict = {
  program : Prog.t;
  obeys_model : bool;
  sc_appearance : bool;
  ok : bool;  (** [obeys_model] implies [sc_appearance] *)
}

type report = {
  hardware : string;
  model : string;
  verdicts : verdict list;
  weakly_ordered : bool;  (** no counterexample in the corpus *)
}

val verify :
  ?por:bool -> hw:hardware -> model:sync_model -> Prog.t list -> report
(** Check Definition 2 over the corpus: one {!verdict} per program.
    [por] is forwarded to {!appears_sc} ([~por:false] = the CLI's
    [--no-por]); the verdicts are identical either way. *)

val counterexamples : report -> verdict list
(** The failing verdicts (programs obeying the model with non-SC
    outcomes). *)

val weaker_than_sc : hw:hardware -> Prog.t list -> bool
(** Some corpus program exhibits a non-SC outcome: the hardware is not just
    trivially weakly ordered by being SC. *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_report : Format.formatter -> report -> unit
