(** Definition 2, executable: hardware is weakly ordered with respect to a
    synchronization model iff it appears sequentially consistent to all
    software obeying the model.

    The real definition quantifies over all programs; {!verify} checks it
    over a finite corpus and reports each counterexample. *)

type sync_model = { model_name : string; obeys : Prog.t -> bool }

val drf0 : sync_model
val drf1 : sync_model

val unconstrained : sync_model
(** Every program obeys it: being weakly ordered w.r.t. this model is being
    sequentially consistent. *)

val fenced_delays : sync_model
(** A program obeys it iff every Shasha–Snir delay pair is separated by a
    fence — the contract for fence-based hardware like the RP3 option or
    the naive machines. *)

type hardware = { hw_name : string; outcomes : Prog.t -> Final.Set.t }

val of_machine : ?domains:int -> ?reduce:bool -> Machines.t -> hardware
(** [?domains] (default 1) and [?reduce] (default [true]) are forwarded
    to {!Machines.explore}: the hardware's outcome sets are computed with
    that many parallel domains, with or without the machine's
    partial-order reduction.  The sets themselves are identical for every
    combination. *)

val of_model : Models.t -> hardware

val appears_sc : ?por:bool -> hardware -> Prog.t -> bool
(** The hardware's outcomes for the program are a subset of the SC
    outcomes.  [por] (default [true]) selects the partial-order-reduced
    SC enumeration; [~por:false] forces the unreduced sweep (the CLI's
    [--no-por]) — same set, different strategy. *)

type coverage =
  | Exhaustive  (** every reachable state examined, exact visited set *)
  | Bounded of { reason : string; degraded : bool }
      (** a budget limited coverage ([reason] says which); [degraded]
          marks a Bloom-filter visited set.  The verdict is still sound:
          outcomes found are real, so a counterexample stands — only the
          {e absence} of one is weaker than exhaustive. *)

val coverage_string : coverage -> string
(** ["exhaustive"], ["bounded:memory+degraded"], ... *)

type verdict = {
  program : Prog.t;
  obeys_model : bool;
  sc_appearance : bool;
  ok : bool;  (** [obeys_model] implies [sc_appearance] *)
  coverage : coverage;
  states : int;
      (** distinct hardware states expanded ([0] when the hardware is not
          a counting engine, e.g. axiomatic models via {!verify}) *)
  reduced : bool;
      (** the exploration behind this verdict ran with partial-order
          reduction enabled (the outcome set, and hence the verdict, is
          identical either way — this records which strategy produced
          it) *)
  degraded_at : int option;
      (** [Some n]: the visited set degraded to a Bloom filter after [n]
          expansions (the memory budget crossed without a spill store) *)
  sym_group : int;
      (** order of the automorphism group the exploration reduced modulo
          ([1]: symmetry off or trivial) *)
  sym_hits : int;  (** probes redirected to another orbit representative *)
  spilled_runs : int;
      (** visited-set runs flushed to the spill directory ([0] without
          one) *)
  spilled_keys : int;  (** visited keys living on disk at the end *)
}

type report = {
  hardware : string;
  model : string;
  verdicts : verdict list;
  weakly_ordered : bool;  (** no counterexample in the corpus *)
}

val report_exhaustive : report -> bool
(** Every verdict has {!Exhaustive} coverage — [weakly_ordered] then
    means "no counterexample exists in the corpus", not merely "none
    found". *)

val verify :
  ?por:bool -> hw:hardware -> model:sync_model -> Prog.t list -> report
(** Check Definition 2 over the corpus: one {!verdict} per program.
    [por] is forwarded to {!appears_sc} ([~por:false] = the CLI's
    [--no-por]); the verdicts are identical either way. *)

val counterexamples : report -> verdict list
(** The failing verdicts (programs obeying the model with non-SC
    outcomes). *)

val weaker_than_sc : hw:hardware -> Prog.t list -> bool
(** Some corpus program exhibits a non-SC outcome: the hardware is not just
    trivially weakly ordered by being SC. *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_report : Format.formatter -> report -> unit

(** {1 Resumable verification}

    {!verify_machine} is {!verify} for an abstract machine with the
    resilience layer threaded through: wall-clock/memory budgets stop the
    campaign at a safe point, the whole campaign state — finished
    verdicts, corpus position, and the in-flight program's exploration
    snapshot — lives in ONE crash-safe checkpoint file (CRC-checked,
    atomically installed, last-good [.prev] generation retained), and
    [~resume] restarts from exactly there. *)

type run_report = {
  report : report;
  suspended : Explore.stop_reason option;
      (** [Some r]: a budget stopped the campaign; the report covers only
          the programs finished so far and the checkpoint (if configured)
          holds the resume point *)
  recovered : bool;
      (** the resume checkpoint came from the [.prev] last-good
          generation (the primary was corrupt or missing) *)
}

val verify_machine :
  ?domains:int ->
  ?fuel:int ->
  ?por:bool ->
  ?sym:bool ->
  ?spill_dir:string ->
  ?spill_threshold:int ->
  ?budget:Budget.t ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:string ->
  ?obs:Obs.t ->
  ?on_event:(string -> unit) ->
  machine:Machines.t ->
  model:sync_model ->
  Prog.t list ->
  run_report
(** Check Definition 2 over the corpus with checkpoints and budgets.

    [~checkpoint path] keeps [path] current: rewritten (atomically) at
    every program boundary and every [checkpoint_every] state expansions
    inside a program, so a [SIGKILL] at any moment loses at most that
    much work.  [~resume path] validates the checkpoint (CRC, version,
    machine, model, corpus fingerprints) and continues; a resumed run
    reaches the same verdicts as an uninterrupted one.  [~budget]
    suspends the campaign cleanly ([suspended = Some _]) with a final
    checkpoint instead of dying mid-sweep; under memory pressure the
    sequential engine degrades to a Bloom-filter visited set and the
    affected verdicts carry [Bounded] coverage (never reported
    exhaustive).

    [~sym] (default [true]) prunes each exploration modulo the program's
    automorphism group; verdicts are identical, [states] drops on
    symmetric programs ([--no-sym] is the differential escape hatch).
    [~spill_dir] replaces memory-pressure degradation with an exact
    tiered visited store ({!Spill_store}) in that directory: the sweep
    spills instead of forgetting and coverage stays {!Exhaustive};
    [~spill_threshold] caps its RAM tier.
    @raise Explore.Resume_rejected when [~resume] fails validation. *)
