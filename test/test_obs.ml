(* Tests for the observability layer: the ring tracer, stall accounting,
   histograms, the Chrome exporter (validity + golden trace), and the
   metrics the exploration engine and SC enumerator feed it. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* --- ring tracer ------------------------------------------------------------ *)

let test_ring_basics () =
  let t = Obs.create ~capacity:4 () in
  check "enabled" true (Obs.enabled t);
  check_int "capacity" 4 (Obs.capacity t);
  check_int "empty" 0 (Obs.recorded t);
  Obs.instant t ~cat:"op" ~name:"a" ~tid:0 ~ts:1 ~loc:"" ~cause:"";
  Obs.span t ~cat:"op" ~name:"b" ~tid:1 ~ts:2 ~dur:5 ~loc:"x" ~cause:"";
  Obs.counter t ~cat:"proto" ~name:"c" ~tid:0 ~ts:3 ~value:7;
  check_int "recorded" 3 (Obs.recorded t);
  check_int "dropped" 0 (Obs.dropped t);
  (match Obs.events t with
  | [ a; b; c ] ->
      check_str "first name" "a" a.Obs.name;
      check_int "span dur" 5 b.Obs.dur;
      check_int "counter value" 7 c.Obs.value
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs));
  Obs.clear t;
  check_int "cleared" 0 (Obs.recorded t);
  check_int "no events after clear" 0 (List.length (Obs.events t))

let test_ring_wrap () =
  let t = Obs.create ~capacity:3 () in
  for i = 1 to 5 do
    Obs.instant t ~cat:"op" ~name:(string_of_int i) ~tid:0 ~ts:i ~loc:""
      ~cause:""
  done;
  check_int "recorded counts overwrites" 5 (Obs.recorded t);
  check_int "dropped = recorded - capacity" 2 (Obs.dropped t);
  Alcotest.(check (list string))
    "oldest first, oldest two gone" [ "3"; "4"; "5" ]
    (List.map (fun e -> e.Obs.name) (Obs.events t))

let test_events_are_copies () =
  let t = Obs.create ~capacity:2 () in
  Obs.instant t ~cat:"op" ~name:"keep" ~tid:0 ~ts:1 ~loc:"" ~cause:"";
  let before = Obs.events t in
  (* Overwrite the slot the first event lived in. *)
  Obs.instant t ~cat:"op" ~name:"x" ~tid:0 ~ts:2 ~loc:"" ~cause:"";
  Obs.instant t ~cat:"op" ~name:"y" ~tid:0 ~ts:3 ~loc:"" ~cause:"";
  check_str "snapshot survives ring reuse" "keep"
    (List.hd before).Obs.name

let test_null_tracer () =
  check "null disabled" false (Obs.enabled Obs.null);
  (* Recording into the null tracer must be a no-op, not an error. *)
  Obs.span Obs.null ~cat:"op" ~name:"n" ~tid:0 ~ts:0 ~dur:1 ~loc:"" ~cause:"";
  Obs.instant Obs.null ~cat:"op" ~name:"n" ~tid:0 ~ts:0 ~loc:"" ~cause:"";
  Obs.counter Obs.null ~cat:"op" ~name:"n" ~tid:0 ~ts:0 ~value:1;
  check_int "null records nothing" 0 (Obs.recorded Obs.null);
  check_int "null holds nothing" 0 (List.length (Obs.events Obs.null))

(* --- stall accounting -------------------------------------------------------- *)

let test_stall_table () =
  let s = Obs.Stall.create () in
  Obs.Stall.add s ~tid:0 ~cause:"gp-wait" ~loc:"s" ~cycles:10;
  Obs.Stall.add s ~tid:0 ~cause:"gp-wait" ~loc:"s" ~cycles:5;
  Obs.Stall.add s ~tid:1 ~cause:"read-miss" ~loc:"x" ~cycles:3;
  Obs.Stall.add s ~tid:0 ~cause:"gp-wait" ~loc:"s" ~cycles:0;
  Obs.Stall.add s ~tid:0 ~cause:"gp-wait" ~loc:"s" ~cycles:(-4);
  check_int "accumulates" 15 (Obs.Stall.get s ~tid:0 ~cause:"gp-wait" ~loc:"s");
  check_int "absent key" 0 (Obs.Stall.get s ~tid:9 ~cause:"gp-wait" ~loc:"s");
  check_int "total" 18 (Obs.Stall.total s);
  check_int "total by proc" 15 (Obs.Stall.total ~tid:0 s);
  check_int "total by cause" 3 (Obs.Stall.total ~cause:"read-miss" s);
  check_int "total by loc" 15 (Obs.Stall.total ~loc:"s" s);
  Alcotest.(check (list (pair int (pair string (pair string int)))))
    "rows sorted"
    [ (0, ("gp-wait", ("s", 15))); (1, ("read-miss", ("x", 3))) ]
    (List.map
       (fun (t, c, l, n) -> (t, (c, (l, n))))
       (Obs.Stall.rows s))

(* --- histograms -------------------------------------------------------------- *)

let test_hist () =
  let h = Obs.Hist.create () in
  check_int "empty count" 0 (Obs.Hist.count h);
  List.iter (Obs.Hist.add h) [ 0; 1; 2; 3; 4; 9 ];
  check_int "count" 6 (Obs.Hist.count h);
  check_int "max" 9 (Obs.Hist.max_value h);
  Alcotest.(check (float 1e-9)) "mean" (19. /. 6.) (Obs.Hist.mean h);
  (* 0,1 -> bucket <=1; 2 -> <=2; 3,4 -> <=4; 9 -> <=16 *)
  Alcotest.(check (list (pair int int)))
    "power-of-two buckets"
    [ (1, 2); (2, 1); (4, 2); (16, 1) ]
    (Obs.Hist.buckets h)

(* --- Chrome exporter --------------------------------------------------------- *)

(* A minimal JSON validity checker: enough of a recursive-descent parser to
   reject structural breakage (unbalanced brackets, broken escapes, bare
   strings) without an external dependency. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let fail = ref false in
  let expect c =
    if peek () = Some c then incr pos else fail := true
  in
  let rec value () =
    if !fail then ()
    else begin
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> str ()
      | Some ('-' | '0' .. '9') -> number ()
      | Some ('t' | 'f' | 'n') -> literal ()
      | _ -> fail := true
    end
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let continue = ref true in
      while !continue && not !fail do
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some '}' ->
            incr pos;
            continue := false
        | _ -> fail := true
      done
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let continue = ref true in
      while !continue && not !fail do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some ']' ->
            incr pos;
            continue := false
        | _ -> fail := true
      done
    end
  and str () =
    expect '"';
    let closed = ref false in
    while (not !closed) && not !fail do
      match peek () with
      | None -> fail := true
      | Some '\\' ->
          incr pos;
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' | 'u') ->
              incr pos
          | _ -> fail := true)
      | Some '"' ->
          incr pos;
          closed := true
      | Some _ -> incr pos
    done
  and number () =
    while
      !pos < n
      && (match s.[!pos] with
         | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true
         | _ -> false)
    do
      incr pos
    done
  and literal () =
    List.iter expect
      (match peek () with
      | Some 't' -> [ 't'; 'r'; 'u'; 'e' ]
      | Some 'f' -> [ 'f'; 'a'; 'l'; 's'; 'e' ]
      | _ -> [ 'n'; 'u'; 'l'; 'l' ])
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

let test_json_checker_sane () =
  check "accepts object" true (json_valid {|{"a": [1, 2], "b": "x\"y"}|});
  check "rejects unbalanced" false (json_valid {|{"a": [1, 2}|});
  check "rejects trailing" false (json_valid {|{} junk|});
  check "rejects bad escape" false (json_valid {|{"a": "\q"}|})

let test_chrome_valid_json () =
  let t = Obs.create ~capacity:64 () in
  Obs.span t ~cat:"op" ~name:"W\"tricky\\" ~tid:0 ~ts:10 ~dur:4 ~loc:"x"
    ~cause:"gp-wait";
  Obs.instant t ~cat:"fault" ~name:"drop" ~tid:0 ~ts:12 ~loc:"1->0" ~cause:"injected";
  Obs.counter t ~cat:"proto" ~name:"outstanding" ~tid:1 ~ts:11 ~value:3;
  let doc = Obs.Chrome.to_string t in
  check "valid JSON" true (json_valid doc);
  check "has traceEvents" true (contains ~sub:"\"traceEvents\"" doc);
  let norm = Obs.Chrome.to_string ~normalize:true t in
  check "normalized still valid" true (json_valid norm);
  check "normalized starts at ts 0" true (contains ~sub:"\"ts\":0" norm)

let test_chrome_empty () =
  let t = Obs.create ~capacity:4 () in
  check "empty trace is valid JSON" true (json_valid (Obs.Chrome.to_string t))

(* --- golden trace ------------------------------------------------------------ *)

let dekker = (Option.get (Litmus_classics.find "dekker")).Litmus_classics.prog

let trace_dekker () =
  let obs = Obs.create () in
  ignore (Sim_litmus.run ~obs Cpu.Def2 dekker);
  Obs.Chrome.to_string ~normalize:true obs

(* [dune runtest] runs with the test directory as cwd; a bare [dune exec]
   from the project root does not — accept either. *)
let read_file path =
  let path = if Sys.file_exists path then path else "test/" ^ path in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_trace () =
  (* The simulator is deterministic, so the normalized Chrome export of a
     fixed run is byte-stable.  If an intentional change to the
     instrumentation or the simulator alters it, regenerate with:
       weakord trace dekker -m def2 --normalize -o \
         test/golden/dekker_def2.trace.json *)
  let golden = read_file "golden/dekker_def2.trace.json" in
  check_str "byte-identical to committed golden trace" golden (trace_dekker ())

let test_trace_deterministic () =
  check_str "two runs, one trace" (trace_dekker ()) (trace_dekker ())

(* --- sim timing-fingerprint goldens ------------------------------------------ *)

(* The gate for timing-invisible engine optimizations (heap queue, batched
   delivery, spin parking): every workload's normalized trace, stall table,
   final memory image and cycle count must stay byte-identical.  Regenerate
   a fingerprint after an intentional timing change with:
     weakord sim -w <name> -p <policy> --golden test/golden/sim_<name>_<policy>.golden *)
let sim_golden_cases =
  [
    ("fig3", fun () -> Workload.fig3_handoff ());
    ("barrier", fun () -> Workload.spin_barrier ());
    ("locks", fun () -> Workload.critical_sections ());
    ("pipeline", fun () -> Workload.pipeline ());
    ("ticket", fun () -> Workload.ticket_lock ());
    ("sense-barrier", fun () -> Workload.sense_barrier ());
  ]

let test_sim_goldens () =
  List.iter
    (fun (name, gen) ->
      List.iter
        (fun policy ->
          let obs = Obs.create () in
          let cfg = Sim_config.make () in
          let r = Sim_run.run ~cfg ~obs policy (gen ()) in
          let got = Sim_run.golden_artifact ~obs r in
          let golden =
            read_file
              (Printf.sprintf "golden/sim_%s_%s.golden" name
                 (Cpu.policy_name policy))
          in
          check_str
            (Printf.sprintf "%s under %s matches committed fingerprint" name
               (Cpu.policy_name policy))
            golden got)
        [ Cpu.Def1; Cpu.Def2 ])
    sim_golden_cases

(* --- simulator stall attribution --------------------------------------------- *)

(* The Figure 3 claim as a regression test: def1 charges P0 ordering stalls
   (counter drain, then global-performance wait) at the Unset of [s]; def2
   charges P0 zero there and shifts the wait to P1 as a reserve-bit
   deferral. *)
let test_fig3_stall_attribution () =
  let stalls policy =
    (Sim_run.run policy (Workload.fig3_handoff ())).Sim_run.stalls
  in
  let d1 = stalls Cpu.Def1 and d2 = stalls Cpu.Def2 in
  let p0_ordering s =
    Obs.Stall.get s ~tid:0 ~cause:Cpu.cause_counter ~loc:"s"
    + Obs.Stall.get s ~tid:0 ~cause:Cpu.cause_gp ~loc:"s"
  in
  check "def1 stalls P0 at the Unset" true (p0_ordering d1 > 0);
  check_int "def2 never stalls P0 at the Unset" 0 (p0_ordering d2);
  check "def2 shifts the wait to P1 (reserve bit)" true
    (Obs.Stall.get d2 ~tid:1 ~cause:Proto.cause_reserve ~loc:"s" > 0);
  (* The table agrees with the aggregate counters the run already kept. *)
  let r = Sim_run.run Cpu.Def1 (Workload.fig3_handoff ()) in
  check_int "stall table matches proc_stats aggregate"
    (r.Sim_run.proc_stats.(0).Cpu.stall_pre_sync
    + r.Sim_run.proc_stats.(0).Cpu.stall_sync_gp)
    (p0_ordering d1)

(* --- exploration metrics ------------------------------------------------------ *)

(* The per-shard claim counts must be consistent with the totals, and the
   totals must agree between the sequential and the parallel engine: every
   distinct state is claimed exactly once, wherever it lands. *)
let test_explore_metrics_consistent () =
  List.iter
    (fun domains ->
      let r = Machines.explore ~domains Machines.def2 dekker in
      let s = r.Explore.stats in
      check_int
        (Printf.sprintf "domains=%d: per-shard claims sum to claimed" domains)
        s.Explore.claimed
        (Array.fold_left ( + ) 0 s.Explore.claimed_per_shard);
      check_int
        (Printf.sprintf "domains=%d: claimed = states expanded" domains)
        s.Explore.states_expanded s.Explore.claimed;
      check
        (Printf.sprintf "domains=%d: table stats populated" domains)
        true
        (s.Explore.table_buckets > 0 && s.Explore.max_probe >= 0))
    [ 1; 4 ];
  let states d =
    (Machines.explore ~domains:d Machines.def2 dekker).Explore.stats
      .Explore.states_expanded
  in
  check_int "same state count at 1 and 4 domains" (states 1) (states 4)

let test_por_counters () =
  (* mp_sync has data accesses private enough for the reduction to fire. *)
  let prog = (Option.get (Litmus_classics.find "mp_sync")).Litmus_classics.prog in
  let set_r, _, st_r = Sc.explore_counted ~reduce:true prog in
  let set_f, _, st_f = Sc.explore_counted ~reduce:false prog in
  check "reduction fired" true (st_r.Sc.por_taken > 0);
  check "declined counted" true (st_r.Sc.por_declined > 0);
  check_int "no reduction, none taken" 0 st_f.Sc.por_taken;
  check_int "no reduction, none declined" 0 st_f.Sc.por_declined;
  check "same outcomes either way" true (Final.Set.equal set_r set_f)

(* --- gauges -------------------------------------------------------------------- *)

let test_gauge () =
  let g = Obs.Gauge.create () in
  check_int "starts at zero" 0 (Obs.Gauge.current g);
  check_int "no samples yet" 0 (Obs.Gauge.samples g);
  Obs.Gauge.incr g;
  Obs.Gauge.incr g;
  Obs.Gauge.incr g;
  Obs.Gauge.decr g;
  check_int "incr/decr track the level" 2 (Obs.Gauge.current g);
  check_int "max is the high-water mark" 3 (Obs.Gauge.max_level g);
  (* samples: 0->1->2->3->2, mean = (1+2+3+2)/4 = 2.0 *)
  check_int "each transition sampled" 4 (Obs.Gauge.samples g);
  Alcotest.(check (float 1e-9)) "mean over samples" 2.0 (Obs.Gauge.mean g);
  Obs.Gauge.set g (-5);
  check_int "set clamps below zero" 0 (Obs.Gauge.current g);
  check_int "max survives the clamp" 3 (Obs.Gauge.max_level g)

(* --- fault window ------------------------------------------------------------- *)

let test_fault_events_and_window () =
  (* Under an aggressive profile the interconnect must mark injected faults
     in the trace, and the window formatter must show only nearby events. *)
  let obs = Obs.create () in
  let cfg =
    Sim_config.make ~faults:Fault.chaos ~fault_seed:3 ()
  in
  (match Sim_litmus.try_run ~cfg ~obs Cpu.Def2 dekker with
  | Ok _ | Error _ -> ());
  let faults =
    List.filter (fun e -> e.Obs.cat = "fault") (Obs.events obs)
  in
  check "injected faults are traced" true (faults <> []);
  let f = List.hd faults in
  let rendered =
    Fmt.str "%a" (fun ppf -> Obs.pp_window ppf ~around:f.Obs.ts ~radius:25) obs
  in
  check "window mentions the fault" true (contains ~sub:f.Obs.name rendered)

let suite =
  ( "obs",
    [
      Alcotest.test_case "ring basics" `Quick test_ring_basics;
      Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
      Alcotest.test_case "events are copies" `Quick test_events_are_copies;
      Alcotest.test_case "null tracer" `Quick test_null_tracer;
      Alcotest.test_case "stall table" `Quick test_stall_table;
      Alcotest.test_case "histogram" `Quick test_hist;
      Alcotest.test_case "json checker sane" `Quick test_json_checker_sane;
      Alcotest.test_case "chrome export is valid json" `Quick
        test_chrome_valid_json;
      Alcotest.test_case "chrome export of empty trace" `Quick
        test_chrome_empty;
      Alcotest.test_case "golden trace (dekker/def2)" `Quick test_golden_trace;
      Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
      Alcotest.test_case "sim timing fingerprints match goldens" `Quick
        test_sim_goldens;
      Alcotest.test_case "fig3 stall attribution" `Quick
        test_fig3_stall_attribution;
      Alcotest.test_case "explore metrics consistent" `Quick
        test_explore_metrics_consistent;
      Alcotest.test_case "por counters" `Quick test_por_counters;
      Alcotest.test_case "gauge levels and means" `Quick test_gauge;
      Alcotest.test_case "fault events and window" `Quick
        test_fault_events_and_window;
    ] )
