(* The resilience layer: CRC-framed snapshots, atomic installs, budgets,
   checkpoint/resume of the exploration engine, and Bloom-filter
   degradation.  The contract under test everywhere: a resumed run reaches
   exactly the state an uninterrupted one does, corrupted or mismatched
   checkpoints are rejected loudly, and degraded coverage is sound (never
   reported complete, never inventing or losing outcomes on this corpus). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let corpus = List.map (fun e -> e.Litmus_classics.prog) Litmus_classics.all
let prog_of n = (Option.get (Litmus_classics.find n)).Litmus_classics.prog

let gen_progs =
  List.filter_map
    (fun seed -> Litmus_gen.generate_live ~max_attempts:20 seed)
    (List.init 20 Fun.id)

let tmp_path suffix = Filename.temp_file "weakord_test" suffix

let set_eq = Final.Set.equal

(* A deadline that is strictly in the past: [gettimeofday] has microsecond
   resolution, so a 0-second deadline checked in the same microsecond it
   was created is not yet "over" — let the clock tick first. *)
let expired_budget () =
  let b = Budget.create ~deadline_s:0. () in
  Unix.sleepf 0.002;
  b

(* --- crc32 ------------------------------------------------------------------ *)

let test_crc32 () =
  (* The IEEE 802.3 check value for "123456789". *)
  check_int "known answer" 0xCBF43926 (Crc32.digest "123456789");
  check_int "empty" 0 (Crc32.digest "");
  check_int "digest_sub agrees"
    (Crc32.digest "456")
    (Crc32.digest_sub "123456789" ~pos:3 ~len:3);
  check "order matters" true (Crc32.digest "ab" <> Crc32.digest "ba")

(* --- atomic file install ---------------------------------------------------- *)

let no_temp_beside path =
  let dir = Filename.dirname path and base = Filename.basename path in
  not
    (Array.exists
       (fun f -> String.starts_with ~prefix:(base ^ ".tmp") f)
       (Sys.readdir dir))

let test_atomic_io () =
  let path = tmp_path ".txt" in
  Atomic_io.write_file path "first";
  check "content installed" true (In_channel.with_open_bin path In_channel.input_all = "first");
  Atomic_io.write_file path "second generation";
  check "overwrite installed" true
    (In_channel.with_open_bin path In_channel.input_all = "second generation");
  check "no temp file left" true (no_temp_beside path);
  (* A writer that raises must leave the previous content untouched and
     clean up its temp file. *)
  (try
     Atomic_io.with_file path (fun oc ->
         output_string oc "garbage";
         failwith "boom")
   with Failure _ -> ());
  check "failed write left old content" true
    (In_channel.with_open_bin path In_channel.input_all = "second generation");
  check "failed write cleaned temp" true (no_temp_beside path);
  Sys.remove path

(* --- snapshot container ----------------------------------------------------- *)

let test_snapshot_roundtrip () =
  let payload = String.init 1000 (fun i -> Char.chr (i * 7 mod 256)) in
  let framed = Snapshot.frame ~kind:"test/kind" ~meta:"some meta" ~payload in
  match Snapshot.unframe framed with
  | Error e -> Alcotest.failf "round trip failed: %s" (Snapshot.error_string e)
  | Ok c ->
      check "kind" true (c.Snapshot.kind = "test/kind");
      check "meta" true (c.Snapshot.meta = "some meta");
      check "payload" true (c.Snapshot.payload = payload)

let test_snapshot_rejects_corruption () =
  let framed =
    Snapshot.frame ~kind:"test/kind" ~meta:"m" ~payload:"payload bytes here"
  in
  (* Flip one bit in the payload region (the tail of the frame). *)
  let b = Bytes.of_string framed in
  let i = Bytes.length b - 4 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
  (match Snapshot.unframe (Bytes.to_string b) with
  | Error Snapshot.Crc_mismatch -> ()
  | Error e -> Alcotest.failf "wanted Crc_mismatch, got %s" (Snapshot.error_string e)
  | Ok _ -> Alcotest.fail "bit-flipped snapshot accepted");
  (* Truncation: cut the frame short. *)
  (match Snapshot.unframe (String.sub framed 0 (String.length framed - 5)) with
  | Error (Snapshot.Truncated | Snapshot.Crc_mismatch) -> ()
  | Error e -> Alcotest.failf "wanted Truncated, got %s" (Snapshot.error_string e)
  | Ok _ -> Alcotest.fail "truncated snapshot accepted");
  (* Not a snapshot at all. *)
  (match Snapshot.unframe "just some file" with
  | Error Snapshot.Not_a_snapshot -> ()
  | _ -> Alcotest.fail "garbage accepted as snapshot");
  (* Version skew: a frame stamped with a future format version (rewrite
     the first header line, keep the rest byte-identical). *)
  let skewed =
    let nl = String.index framed '\n' in
    Printf.sprintf "WOSNAP %d%s"
      (Snapshot.format_version + 1)
      (String.sub framed nl (String.length framed - nl))
  in
  match Snapshot.unframe skewed with
  | Error (Snapshot.Version_skew { found; expected }) ->
      check_int "found version" (Snapshot.format_version + 1) found;
      check_int "expected version" Snapshot.format_version expected
  | Error e -> Alcotest.failf "wanted Version_skew, got %s" (Snapshot.error_string e)
  | Ok _ -> Alcotest.fail "version-skewed snapshot accepted"

let test_snapshot_prev_generation () =
  let path = tmp_path ".snap" in
  Snapshot.write_file path
    (Snapshot.frame ~kind:"k" ~meta:"gen1" ~payload:"one");
  Snapshot.write_file path
    (Snapshot.frame ~kind:"k" ~meta:"gen2" ~payload:"two");
  check "prev retained" true (Sys.file_exists (Snapshot.prev_path path));
  (* Primary valid: no fallback. *)
  (match Snapshot.load path with
  | Ok { Snapshot.container; recovered } ->
      check "fresh load" false recovered;
      check "latest generation" true (container.Snapshot.payload = "two")
  | Error _ -> Alcotest.fail "valid primary rejected");
  (* Corrupt the primary: load falls back to the last-good generation and
     says so. *)
  Out_channel.with_open_bin path (fun oc -> output_string oc "smashed");
  (match Snapshot.load path with
  | Ok { Snapshot.container; recovered } ->
      check "recovered flagged" true recovered;
      check "prev generation served" true (container.Snapshot.payload = "one")
  | Error _ -> Alcotest.fail "fallback to .prev failed");
  (* Both generations bad: a loud error, not garbage. *)
  Out_channel.with_open_bin (Snapshot.prev_path path) (fun oc ->
      output_string oc "also smashed");
  (match Snapshot.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt snapshot pair accepted");
  Sys.remove path;
  Sys.remove (Snapshot.prev_path path)

(* --- bloom filter ------------------------------------------------------------ *)

let test_bloom () =
  let b = Bloom.create ~bits:(1 lsl 14) in
  check "fresh add is new" false (Bloom.add_mem b 12345 6789);
  check "second add is seen" true (Bloom.add_mem b 12345 6789);
  check "other key is new" false (Bloom.add_mem b 54321 987);
  check "ones counted" true (Bloom.ones b > 0);
  let st = Bloom.export b in
  let b' = Bloom.import st in
  check "import preserves membership" true (Bloom.add_mem b' 12345 6789);
  check_int "import recounts ones" (Bloom.ones b) (Bloom.ones b');
  match Bloom.import { st with Bloom.s_bits = 12345 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-power-of-two import accepted"

(* --- budgets ----------------------------------------------------------------- *)

let test_budget () =
  let b = Budget.create ~deadline_s:0. ~mem_bytes:100 () in
  Unix.sleepf 0.002;
  check "deadline 0 expires" true (Budget.over_deadline b);
  check "under memory" false (Budget.over_memory b ~bytes:50);
  check "over memory" true (Budget.over_memory b ~bytes:200);
  check "memory wins ties" true (Budget.check b ~bytes:200 = Some Budget.Memory);
  let d = Budget.deadline_only b in
  check "deadline_only drops memory" false (Budget.over_memory d ~bytes:1_000_000);
  check "deadline_only keeps deadline" true (Budget.over_deadline d);
  check "unlimited" true (Budget.is_unlimited Budget.unlimited);
  match Budget.create ~deadline_s:(-1.) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative deadline accepted"

(* --- explore: checkpoint / resume ------------------------------------------- *)

let explore_with ?fuel ?domains ?adaptive ?reduce ?(sym = true) ?spill_dir
    ?budget ?resume ?(every = 50) ?on_snap m prog =
  let last = ref None in
  let rcfg =
    {
      Explore.rcfg_default with
      Explore.budget;
      checkpoint_every = every;
      snapshot_sink =
        Some
          (fun bytes ->
            last := Some bytes;
            match on_snap with Some f -> f bytes | None -> ());
      resume;
      sym;
      spill_dir;
    }
  in
  let r = Machines.explore ?domains ?adaptive ?reduce ?fuel ~rcfg m prog in
  (r, !last)

let test_explore_resume_equals_uninterrupted () =
  List.iter
    (fun (mname, tname) ->
      let m = Option.get (Machines.find mname) in
      let prog = prog_of tname in
      let full = Machines.explore m prog in
      let full_set = Explore.bounded_value full.Explore.result in
      let full_states = full.Explore.stats.Explore.states_expanded in
      (* Stop a third of the way in, snapshot, resume without the bound:
         same outcome set, same total states expanded. *)
      let fuel = max 1 (full_states / 3) in
      let stopped, snap = explore_with ~fuel m prog in
      check
        (Printf.sprintf "%s/%s stops on fuel" mname tname)
        true
        (stopped.Explore.stop = Some Explore.Fuel_exhausted);
      check
        (Printf.sprintf "%s/%s partial is subset" mname tname)
        true
        (Final.Set.subset
           (Explore.bounded_value stopped.Explore.result)
           full_set);
      let snap = Option.get snap in
      check
        (Printf.sprintf "%s/%s frontier survives the stop" mname tname)
        true
        (Machines.snapshot_frontier_length m snap > 0);
      let resumed, _ = explore_with ~resume:snap m prog in
      check
        (Printf.sprintf "%s/%s resumed run completes" mname tname)
        true
        (Explore.is_complete resumed.Explore.result);
      check
        (Printf.sprintf "%s/%s resumed outcomes == uninterrupted" mname tname)
        true
        (set_eq (Explore.bounded_value resumed.Explore.result) full_set);
      check_int
        (Printf.sprintf "%s/%s resumed total states == uninterrupted" mname
           tname)
        full_states resumed.Explore.stats.Explore.states_expanded)
    [ ("wbuf", "dekker"); ("def2", "iriw"); ("ooo", "mp"); ("rc", "lb") ]

let test_explore_deadline_stop () =
  let m = Machines.def2 and prog = prog_of "dekker" in
  let stopped, snap = explore_with ~budget:(expired_budget ()) m prog in
  check "deadline stops immediately" true
    (stopped.Explore.stop = Some Explore.Deadline_exceeded);
  check_int "nothing expanded" 0 stopped.Explore.stats.Explore.states_expanded;
  (* The initial state is still in the frontier: nothing was lost. *)
  check "initial state in frontier" true
    (Machines.snapshot_frontier_length m (Option.get snap) = 1);
  let resumed, _ = explore_with ~resume:(Option.get snap) m prog in
  check "resume completes" true (Explore.is_complete resumed.Explore.result);
  check "resume matches full" true
    (set_eq
       (Explore.bounded_value resumed.Explore.result)
       (Machines.outcomes m prog))

let test_explore_resume_rejects_mismatch () =
  let m = Machines.def2 in
  let _, snap = explore_with ~fuel:5 m (prog_of "dekker") in
  let snap = Option.get snap in
  (* Wrong program. *)
  (match explore_with ~resume:snap m (prog_of "mp") with
  | exception Explore.Resume_rejected _ -> ()
  | _ -> Alcotest.fail "snapshot for dekker resumed against mp");
  (* Wrong machine. *)
  (match explore_with ~resume:snap Machines.wbuf (prog_of "dekker") with
  | exception Explore.Resume_rejected _ -> ()
  | _ -> Alcotest.fail "def2 snapshot resumed on wbuf");
  (* Bit flip. *)
  let b = Bytes.of_string snap in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  match explore_with ~resume:(Bytes.to_string b) m (prog_of "dekker") with
  | exception Explore.Resume_rejected _ -> ()
  | _ -> Alcotest.fail "corrupted snapshot accepted"

(* --- explore: graceful degradation ------------------------------------------ *)

(* A memory budget small enough that every corpus program crosses it
   almost immediately, exercising the Bloom hand-off on real state
   graphs. *)
let tiny_mem = Budget.create ~mem_bytes:512 ()

let test_degraded_never_complete_never_wrong () =
  List.iter
    (fun m ->
      List.iter
        (fun prog ->
          let exact = Machines.explore m prog in
          let exact_set = Explore.bounded_value exact.Explore.result in
          (* [~sym:false]: symmetry can finish a tiny symmetric program
             in a handful of states, under the degradation bar this test
             exists to cross. *)
          let degraded, _ = explore_with ~sym:false ~budget:tiny_mem m prog in
          (* Soundness by construction: degraded coverage must never be
             reported complete... *)
          check
            (Printf.sprintf "%s/%s degraded is Partial" (Machines.name m)
               (Prog.name prog))
            false
            (Explore.is_complete degraded.Explore.result);
          check
            (Printf.sprintf "%s/%s degradation recorded" (Machines.name m)
               (Prog.name prog))
            true
            (degraded.Explore.stats.Explore.degraded_at <> None);
          (* ...every outcome it reports must be real... *)
          let deg_set = Explore.bounded_value degraded.Explore.result in
          check
            (Printf.sprintf "%s/%s degraded subset of exact" (Machines.name m)
               (Prog.name prog))
            true
            (Final.Set.subset deg_set exact_set);
          (* ...and with a generously sized filter it must not lose any
             outcome the exact sweep finds on this corpus — in particular
             no violation (non-SC outcome) goes unnoticed. *)
          check
            (Printf.sprintf "%s/%s degraded finds every exact outcome"
               (Machines.name m) (Prog.name prog))
            true
            (set_eq deg_set exact_set))
        (corpus @ gen_progs))
    [ Machines.wbuf; Machines.def2 ]

let test_degraded_snapshot_resumes_sequentially () =
  let m = Machines.def2 and prog = prog_of "iriw" in
  let full = Machines.outcomes m prog in
  (* Degrade AND stop (fuel), then resume: still degraded, still sound. *)
  let states =
    (Machines.explore m prog).Explore.stats.Explore.states_expanded
  in
  let stopped, snap =
    explore_with ~budget:tiny_mem ~fuel:(max 1 (states / 2)) m prog
  in
  check "degraded run stopped on fuel" true
    (stopped.Explore.stop = Some Explore.Fuel_exhausted);
  let snap = Option.get snap in
  let resumed, _ = explore_with ~resume:snap ~budget:tiny_mem m prog in
  check "degraded resume still Partial" false
    (Explore.is_complete resumed.Explore.result);
  check "degraded resume finds everything" true
    (set_eq (Explore.bounded_value resumed.Explore.result) full);
  (* The parallel engine cannot adopt a Bloom visited set: rejected, not
     silently wrong.  [~adaptive:false] forces the genuinely parallel
     path — with the adaptive fallback this machine would (soundly) drop
     to the sequential engine on a single-core host and accept it. *)
  match explore_with ~resume:snap ~domains:4 ~adaptive:false m prog with
  | exception Explore.Resume_rejected _ -> ()
  | _ -> Alcotest.fail "parallel engine accepted a degraded snapshot"

(* --- spill store: spill instead of degrading --------------------------------- *)

let tmp_dir () =
  let d = Filename.temp_file "weakord_spill" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let test_spill_store_unit () =
  let dir = tmp_dir () in
  let key i = Marshal.to_string (i, "spill-key") [ Marshal.No_sharing ] in
  let t = Spill_store.create ~dir ~threshold:16 in
  for i = 0 to 99 do
    check (Printf.sprintf "key %d fresh" i) true (Spill_store.add t (key i))
  done;
  for i = 0 to 99 do
    check "re-add seen" false (Spill_store.add t (key i));
    check "mem" true (Spill_store.mem t (key i))
  done;
  check "absent key" false (Spill_store.mem t (key 1000));
  check_int "total" 100 (Spill_store.total t);
  let st = Spill_store.stats t in
  check "runs written" true (st.Spill_store.st_runs > 0);
  check "keys spilled" true (st.Spill_store.st_spilled_keys > 0);
  check "hot tier capped" true (Spill_store.hot_size t <= 16);
  Spill_store.flush t;
  let image = Spill_store.export t in
  Spill_store.close t;
  (* Import rebuilds the same membership from the immutable runs. *)
  let t' = Spill_store.import ~dir ~threshold:16 image in
  for i = 0 to 99 do
    check "imported mem" true (Spill_store.mem t' (key i))
  done;
  check_int "imported total" 100 (Spill_store.total t');
  Spill_store.close t';
  (* A bit flip in any run file is a loud [Corrupt], not wrong answers. *)
  let run =
    List.find
      (fun f -> Filename.check_suffix f ".spill")
      (Array.to_list (Sys.readdir dir))
  in
  let path = Filename.concat dir run in
  let content = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string content in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  Out_channel.with_open_bin path (fun oc -> output_bytes oc b);
  (match Spill_store.import ~dir ~threshold:16 image with
  | exception Spill_store.Corrupt _ -> ()
  | t ->
      Spill_store.close t;
      Alcotest.fail "corrupted run file accepted");
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let test_spill_stays_complete () =
  (* The same memory pressure that degrades the Bloom path to [Partial]
     spills to disk and stays [Complete] — same outcomes as the exact
     sweep, nonzero run files, no degradation event. *)
  List.iter
    (fun (mname, tname) ->
      let m = Option.get (Machines.find mname) in
      let prog = prog_of tname in
      let exact = Machines.outcomes m prog in
      let dir = tmp_dir () in
      let r, _ =
        explore_with ~sym:false ~spill_dir:dir
          ~budget:(Budget.create ~mem_bytes:512 ())
          m prog
      in
      check
        (Printf.sprintf "%s/%s spilling run is Complete" mname tname)
        true
        (Explore.is_complete r.Explore.result);
      check
        (Printf.sprintf "%s/%s no degradation" mname tname)
        true
        (r.Explore.stats.Explore.degraded_at = None);
      check
        (Printf.sprintf "%s/%s runs spilled" mname tname)
        true
        (r.Explore.stats.Explore.spilled_runs > 0);
      check
        (Printf.sprintf "%s/%s keys on disk" mname tname)
        true
        (r.Explore.stats.Explore.spilled_keys > 0);
      check
        (Printf.sprintf "%s/%s outcomes == exact" mname tname)
        true
        (set_eq (Explore.bounded_value r.Explore.result) exact);
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir)
    [ ("def2", "iriw"); ("wbuf", "dekker") ]

let test_spill_snapshot_resume () =
  let m = Machines.def2 and prog = prog_of "iriw" in
  let full = Machines.outcomes m prog in
  let budget () = Budget.create ~mem_bytes:512 () in
  let dir = tmp_dir () in
  let uninterrupted, _ =
    explore_with ~sym:false ~spill_dir:dir ~budget:(budget ()) m prog
  in
  let total_states =
    uninterrupted.Explore.stats.Explore.states_expanded
  in
  (* Stop a spilling sweep mid-way; the snapshot names the immutable runs
     and the resume re-opens exactly them. *)
  let dir2 = tmp_dir () in
  let stopped, snap =
    explore_with ~sym:false ~spill_dir:dir2 ~budget:(budget ())
      ~fuel:(max 1 (total_states / 2))
      m prog
  in
  check "spilling run stops on fuel" true
    (stopped.Explore.stop = Some Explore.Fuel_exhausted);
  let snap = Option.get snap in
  let resumed, _ =
    explore_with ~sym:false ~spill_dir:dir2 ~budget:(budget ()) ~resume:snap
      m prog
  in
  check "spill resume completes" true
    (Explore.is_complete resumed.Explore.result);
  check "spill resume outcomes == uninterrupted" true
    (set_eq (Explore.bounded_value resumed.Explore.result) full);
  check_int "spill resume total states == uninterrupted" total_states
    resumed.Explore.stats.Explore.states_expanded;
  (* The snapshot is useless without its store: rejected, never silently
     re-explored with partial memory. *)
  (match explore_with ~sym:false ~resume:snap m prog with
  | exception Explore.Resume_rejected _ -> ()
  | _ -> Alcotest.fail "spill snapshot resumed without its spill dir");
  List.iter
    (fun d ->
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
      Unix.rmdir d)
    [ dir; dir2 ]

(* --- explore: snapshot/resume with reduction enabled ------------------------- *)

(* Reduction changes what a snapshot must carry (per-state sleep sets);
   resume must reproduce the uninterrupted reduced run exactly — same
   outcome set, same total states — and a snapshot taken under one
   reduction setting must be rejected under the other, never silently
   reinterpreted. *)
let big3 =
  Litmus_parse.parse_string
    "name big3\n\
     { x=0; y=0; z=0 }\n\
     P0          | P1          | P2          ;\n\
     W x 1       | W y 1       | W z 1       ;\n\
     r0 := R y   | r3 := R z   | r6 := R x   ;\n\
     W x 2       | W y 2       | W z 2       ;\n\
     r1 := R z   | r4 := R x   | r7 := R y   ;\n\
     exists (0:r0=0)\n"

let test_reduced_snapshot_resume () =
  let m = Machines.def2 in
  let full = Machines.explore m big3 in
  check "reduction engaged" true full.Explore.stats.Explore.por_enabled;
  let full_set = Explore.bounded_value full.Explore.result in
  let full_states = full.Explore.stats.Explore.states_expanded in
  let stopped, snap = explore_with ~fuel:(max 1 (full_states / 3)) m big3 in
  check "reduced run stops on fuel" true
    (stopped.Explore.stop = Some Explore.Fuel_exhausted);
  let snap = Option.get snap in
  let resumed, _ = explore_with ~resume:snap m big3 in
  check "reduced resume completes" true
    (Explore.is_complete resumed.Explore.result);
  check "reduced resume matches uninterrupted set" true
    (set_eq (Explore.bounded_value resumed.Explore.result) full_set);
  Alcotest.(check int)
    "reduced resume expands the same total states" full_states
    resumed.Explore.stats.Explore.states_expanded;
  (* A reduced snapshot under --no-por (and vice versa) is a different
     sweep: rejected loudly. *)
  (match explore_with ~resume:snap ~reduce:false m big3 with
  | exception Explore.Resume_rejected _ -> ()
  | _ -> Alcotest.fail "reduced snapshot accepted by an unreduced run");
  let stopped_un, snap_un =
    explore_with ~reduce:false ~fuel:(max 1 (full_states / 3)) m big3
  in
  check "unreduced run stops on fuel" true
    (stopped_un.Explore.stop = Some Explore.Fuel_exhausted);
  match explore_with ~resume:(Option.get snap_un) m big3 with
  | exception Explore.Resume_rejected _ -> ()
  | _ -> Alcotest.fail "unreduced snapshot accepted by a reduced run"

(* --- explore: parallel budgets ---------------------------------------------- *)

let test_parallel_stop_and_resume () =
  let m = Machines.def2 and prog = prog_of "dekker" in
  let full = Machines.outcomes m prog in
  let states =
    (Machines.explore m prog).Explore.stats.Explore.states_expanded
  in
  let stopped, snap =
    explore_with ~domains:4 ~fuel:(max 1 (states / 3)) m prog
  in
  check "parallel stops on fuel" true
    (stopped.Explore.stop = Some Explore.Fuel_exhausted);
  check "parallel partial is subset" true
    (Final.Set.subset (Explore.bounded_value stopped.Explore.result) full);
  let resumed, _ = explore_with ~resume:(Option.get snap) ~domains:4 m prog in
  check "parallel resume completes" true
    (Explore.is_complete resumed.Explore.result);
  check "parallel resume matches full" true
    (set_eq (Explore.bounded_value resumed.Explore.result) full)

(* --- explore: events land in the obs layer ---------------------------------- *)

let test_obs_events () =
  let m = Machines.def2 and prog = prog_of "dekker" in
  let obs = Obs.create () in
  let rcfg =
    {
      Explore.rcfg_default with
      Explore.budget = Some tiny_mem;
      checkpoint_every = 10;
      snapshot_sink = Some (fun _ -> ());
      obs;
    }
  in
  ignore (Machines.explore ~rcfg m prog);
  let names =
    List.filter_map
      (fun e ->
        if String.equal e.Obs.cat "explore" then Some e.Obs.name else None)
      (Obs.events obs)
  in
  check "degrade event recorded" true (List.mem "degrade" names);
  check "checkpoint event recorded" true (List.mem "checkpoint" names)

(* --- budgeted SC ------------------------------------------------------------- *)

let test_sc_within_budget () =
  let prog = prog_of "iriw" in
  let full = Sc.outcomes prog in
  let set, _, complete =
    Sc.explore_within ~budget:Budget.unlimited prog
  in
  check "unlimited budget completes" true complete;
  check "unlimited budget equals full" true (set_eq set full);
  let set0, _, complete0 = Sc.explore_within ~budget:(expired_budget ()) prog in
  check "expired budget is partial" false complete0;
  check "partial SC is sound subset" true (Final.Set.subset set0 full)

(* --- verify_machine: suspend / resume --------------------------------------- *)

let test_verify_machine_suspend_resume () =
  let machine = Machines.def2 and model = Weak_ordering.drf0 in
  let small_corpus =
    List.filter
      (fun p ->
        List.mem (Prog.name p) [ "dekker"; "mp_sync"; "iriw"; "lb"; "corr" ])
      corpus
  in
  let uninterrupted =
    Weak_ordering.verify_machine ~machine ~model small_corpus
  in
  check "uninterrupted not suspended" true
    (uninterrupted.Weak_ordering.suspended = None);
  let path = tmp_path ".ckpt" in
  (* An already-expired deadline: suspends before the first program with a
     checkpoint at position 0. *)
  let r0 =
    Weak_ordering.verify_machine ~budget:(expired_budget ()) ~checkpoint:path
      ~machine ~model small_corpus
  in
  check "suspended" true (r0.Weak_ordering.suspended <> None);
  check_int "no verdicts yet" 0
    (List.length r0.Weak_ordering.report.Weak_ordering.verdicts);
  (* Resume without the budget: finishes, verdicts equal uninterrupted. *)
  let r1 =
    Weak_ordering.verify_machine ~resume:path ~checkpoint:path ~machine ~model
      small_corpus
  in
  check "resumed run completes" true (r1.Weak_ordering.suspended = None);
  Alcotest.(check (list (pair bool bool)))
    "resumed verdicts == uninterrupted"
    (List.map
       (fun v -> (v.Weak_ordering.ok, v.Weak_ordering.sc_appearance))
       uninterrupted.Weak_ordering.report.Weak_ordering.verdicts)
    (List.map
       (fun v -> (v.Weak_ordering.ok, v.Weak_ordering.sc_appearance))
       r1.Weak_ordering.report.Weak_ordering.verdicts);
  Alcotest.(check (list int))
    "resumed state counts == uninterrupted"
    (List.map
       (fun v -> v.Weak_ordering.states)
       uninterrupted.Weak_ordering.report.Weak_ordering.verdicts)
    (List.map
       (fun v -> v.Weak_ordering.states)
       r1.Weak_ordering.report.Weak_ordering.verdicts);
  (* Identity validation: the checkpoint (now at end-of-corpus) names this
     machine/model/corpus; a different machine must be rejected. *)
  (match
     Weak_ordering.verify_machine ~resume:path ~machine:Machines.wbuf ~model
       small_corpus
   with
  | exception Explore.Resume_rejected _ -> ()
  | _ -> Alcotest.fail "checkpoint resumed under the wrong machine");
  (* Corrupt checkpoint with corrupt .prev: loud rejection. *)
  Out_channel.with_open_bin path (fun oc -> output_string oc "smashed");
  (try Sys.remove (Snapshot.prev_path path) with Sys_error _ -> ());
  (match
     Weak_ordering.verify_machine ~resume:path ~machine ~model small_corpus
   with
  | exception Explore.Resume_rejected _ -> ()
  | _ -> Alcotest.fail "corrupt checkpoint accepted");
  try Sys.remove path with Sys_error _ -> ()

let test_verify_machine_degraded_is_bounded () =
  let machine = Machines.def2 and model = Weak_ordering.drf0 in
  let small_corpus =
    List.filter (fun p -> List.mem (Prog.name p) [ "dekker"; "mp" ]) corpus
  in
  let r =
    Weak_ordering.verify_machine ~budget:(Budget.create ~mem_bytes:512 ())
      ~machine ~model small_corpus
  in
  check "campaign completes" true (r.Weak_ordering.suspended = None);
  List.iter
    (fun v ->
      check
        (Printf.sprintf "%s bounded coverage" (Prog.name v.Weak_ordering.program))
        false
        (v.Weak_ordering.coverage = Weak_ordering.Exhaustive))
    r.Weak_ordering.report.Weak_ordering.verdicts;
  check "report not exhaustive" false
    (Weak_ordering.report_exhaustive r.Weak_ordering.report)

(* --- sim: the watchdog hook ------------------------------------------------- *)

let test_on_wedged_hook () =
  (* A 1-cycle limit wedges any real workload: the hook must fire with the
     diagnostic before Wedged unwinds. *)
  let fired = ref None in
  (match
     Sim_run.run ~limit:1
       ~on_wedged:(fun d -> fired := Some d)
       Cpu.Def2 (Workload.fig3_handoff ())
   with
  | exception Sim_run.Wedged _ -> ()
  | _ -> Alcotest.fail "1-cycle limit did not wedge");
  match !fired with
  | Some d -> check "diagnostic mentions livelock" true (String.length d > 0)
  | None -> Alcotest.fail "on_wedged never fired"

let suite =
  ( "resilience",
    [
      Alcotest.test_case "crc32 known answers" `Quick test_crc32;
      Alcotest.test_case "atomic file install" `Quick test_atomic_io;
      Alcotest.test_case "snapshot round trip" `Quick test_snapshot_roundtrip;
      Alcotest.test_case "snapshot rejects corruption/skew" `Quick
        test_snapshot_rejects_corruption;
      Alcotest.test_case "snapshot .prev generation" `Quick
        test_snapshot_prev_generation;
      Alcotest.test_case "bloom filter" `Quick test_bloom;
      Alcotest.test_case "budgets" `Quick test_budget;
      Alcotest.test_case "explore resume == uninterrupted" `Quick
        test_explore_resume_equals_uninterrupted;
      Alcotest.test_case "explore deadline stop" `Quick
        test_explore_deadline_stop;
      Alcotest.test_case "explore resume rejects mismatch" `Quick
        test_explore_resume_rejects_mismatch;
      Alcotest.test_case "degraded never Complete, never wrong" `Quick
        test_degraded_never_complete_never_wrong;
      Alcotest.test_case "degraded snapshot resumes sequentially" `Quick
        test_degraded_snapshot_resumes_sequentially;
      Alcotest.test_case "spill store unit" `Quick test_spill_store_unit;
      Alcotest.test_case "spill stays Complete under memory pressure" `Quick
        test_spill_stays_complete;
      Alcotest.test_case "spill snapshot resume" `Quick
        test_spill_snapshot_resume;
      Alcotest.test_case "reduced snapshot resume" `Quick
        test_reduced_snapshot_resume;
      Alcotest.test_case "parallel stop and resume" `Quick
        test_parallel_stop_and_resume;
      Alcotest.test_case "explore events in obs" `Quick test_obs_events;
      Alcotest.test_case "budgeted SC enumeration" `Quick test_sc_within_budget;
      Alcotest.test_case "verify_machine suspend/resume" `Quick
        test_verify_machine_suspend_resume;
      Alcotest.test_case "verify_machine degraded coverage" `Quick
        test_verify_machine_degraded_is_bounded;
      Alcotest.test_case "watchdog on_wedged hook" `Quick test_on_wedged_hook;
    ] )
