(* The batch verification service's in-process pieces: the job-file
   parser, the CRC-validated verdict cache, the deterministic retry
   backoff, and the worker's verdict computation.  The process-level
   machinery (forked workers, SIGKILL, drain/resume) is exercised by
   test/batch_chaos.sh against the real binary — forking is not safe
   in-process here, where earlier suites have already spawned domains. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let prog_of n = (Option.get (Litmus_classics.find n)).Litmus_classics.prog
let tmp_path suffix = Filename.temp_file "weakord_service" suffix

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- job files --------------------------------------------------------------- *)

let parse_ok ?default_machine s =
  match Job.parse_string ?default_machine s with
  | Ok jobs -> jobs
  | Error e -> Alcotest.failf "job file rejected: %s" e

let parse_err ?default_machine s =
  match Job.parse_string ?default_machine s with
  | Ok _ -> Alcotest.fail "job file unexpectedly accepted"
  | Error e -> e

let test_job_parse () =
  let jobs =
    parse_ok
      "# a comment\n\
       machine wbuf\n\
       test mp\n\
       file /some/path.litmus machine=ooo\n\
       seeds 3..5\n\
       seed 9 machine=def2 threads=2 no-await\n\
       wedge\n"
  in
  check_int "expanded count" 7 (List.length jobs);
  let ids = List.map (fun j -> j.Job.id) jobs in
  check "ids are positions" true (ids = [ 0; 1; 2; 3; 4; 5; 6 ]);
  let nth n = List.nth jobs n in
  check_string "default machine directive" "wbuf" (nth 0).Job.machine;
  check_string "per-line override" "ooo" (nth 1).Job.machine;
  check "seeds expand inclusively" true
    (match ((nth 2).Job.source, (nth 4).Job.source) with
    | Job.Seed { seed = 3; _ }, Job.Seed { seed = 5; _ } -> true
    | _ -> false);
  (match (nth 5).Job.source with
  | Job.Seed { seed = 9; config } ->
      check_int "genopt threads" 2 config.Litmus_gen.max_threads;
      check "genopt no-await" false config.Litmus_gen.allow_await;
      check_string "gen args reproduce the line" "--seed 9 --threads 2 --no-await"
        (Job.gen_args (nth 5).Job.source)
  | _ -> Alcotest.fail "seed job not parsed as Seed");
  check "wedge parsed" true ((nth 6).Job.source = Job.Wedge);
  check_string "wedge keeps directive machine" "wbuf" (nth 6).Job.machine

let test_job_parse_errors () =
  let located e = String.length e > 5 && String.sub e 0 5 = "line " in
  check "unknown machine is located" true
    (located (parse_err "test mp machine=nope\n"));
  check "unknown directive is located" true (located (parse_err "frob 3\n"));
  check "inverted seed range rejected" true (located (parse_err "seeds 5..3\n"));
  check "garbage seed rejected" true (located (parse_err "seed banana\n"));
  check "bad genopt rejected" true (located (parse_err "seed 1 threads=x\n"));
  check "default machine validated" true
    (Result.is_error (Job.parse_string ~default_machine:"nope" "test mp\n"))

let test_job_fingerprint () =
  let a = parse_ok "test mp\nseeds 0..3\n" in
  let b = parse_ok "test mp\nseeds 0..3\n" in
  let c = parse_ok "test mp\nseeds 0..4\n" in
  let d = parse_ok "test mp\nseeds 0..3 machine=wbuf\n" in
  check "same file, same fingerprint" true
    (Job.fingerprint a = Job.fingerprint b);
  check "longer range differs" true (Job.fingerprint a <> Job.fingerprint c);
  check "machine change differs" true (Job.fingerprint a <> Job.fingerprint d)

(* --- verdict cache ----------------------------------------------------------- *)

let sample_verdict =
  {
    Verdict_cache.v_outcomes = [ "r1_0=0 r2_0=1" ];
    v_appears_sc = true;
    v_obeys_model = true;
    v_allows_exists = Some false;
    v_violation = false;
    v_states = 42;
    v_complete = true;
    v_degraded = None;
    v_spilled_runs = 0;
  }

let test_cache_roundtrip () =
  let path = tmp_path ".wovc" in
  Sys.remove path;
  let key = Verdict_cache.key ~prog:(prog_of "mp") ~machine:"def2" ~model:"drf0" in
  let c = Verdict_cache.open_file path in
  check "cold miss" true (Verdict_cache.find c key = None);
  Verdict_cache.add c key sample_verdict;
  Verdict_cache.close c;
  let c2 = Verdict_cache.open_file path in
  (match Verdict_cache.find c2 key with
  | Some v ->
      check_int "states survive reload" 42 v.Verdict_cache.v_states;
      check "exists survives reload" true
        (v.Verdict_cache.v_allows_exists = Some false)
  | None -> Alcotest.fail "persisted verdict not found after reopen");
  let s = Verdict_cache.stats c2 in
  check_int "hit counted" 1 s.Verdict_cache.hits;
  check_int "miss not counted on hit path" 0 s.Verdict_cache.misses;
  check_int "nothing corrupt" 0 s.Verdict_cache.corrupt_skipped;
  Verdict_cache.close c2;
  Sys.remove path

(* The cache keys on canonical program text: the same program reached
   under a different name must share a slot, and a different machine or
   model must not. *)
let test_cache_key () =
  let mp = prog_of "mp" in
  let renamed =
    Prog.make ~name:"other_name" ~init:(Prog.init mp)
      ?exists:(Prog.exists mp) (Prog.threads mp)
  in
  let k prog machine model = Verdict_cache.key ~prog ~machine ~model in
  check "name does not split slots" true
    (k mp "def2" "drf0" = k renamed "def2" "drf0");
  check "machine splits slots" true (k mp "def2" "drf0" <> k mp "wbuf" "drf0");
  check "model splits slots" true (k mp "def2" "drf0" <> k mp "def2" "drf1")

(* A flipped byte inside one record must cost exactly that record — a
   recompute, never a wrong verdict and never the rest of the file. *)
let test_cache_corruption () =
  let path = tmp_path ".wovc" in
  Sys.remove path;
  let keys = List.init 5 (fun i -> Printf.sprintf "key-%d|def2|drf0|wovc1" i) in
  let c = Verdict_cache.open_file path in
  List.iteri
    (fun i k ->
      Verdict_cache.add c k
        { sample_verdict with Verdict_cache.v_states = 100 + i })
    keys;
  Verdict_cache.close c;
  (* Flip a byte in the middle of the third record's payload. *)
  let data = In_channel.with_open_bin path In_channel.input_all in
  let target = "key-2|" in
  let idx =
    let rec find i =
      if String.sub data i (String.length target) = target then i
      else find (i + 1)
    in
    find 0
  in
  let b = Bytes.of_string data in
  let flip = idx + 40 in
  Bytes.set b flip (Char.chr (Char.code (Bytes.get b flip) lxor 0xff));
  Out_channel.with_open_bin path (fun ch ->
      Out_channel.output_bytes ch b);
  let c2 = Verdict_cache.open_file path in
  let s = Verdict_cache.stats c2 in
  check "corruption detected" true (s.Verdict_cache.corrupt_skipped >= 1);
  (* The corrupted record reads as a miss (forcing a recompute)... *)
  check "corrupt record is a miss" true
    (Verdict_cache.find c2 (List.nth keys 2) = None);
  (* ...while every other record survives with its own verdict. *)
  List.iteri
    (fun i k ->
      if i <> 2 then
        match Verdict_cache.find c2 k with
        | Some v -> check_int "intact record" (100 + i) v.Verdict_cache.v_states
        | None -> Alcotest.failf "record %d lost to a neighbor's corruption" i)
    keys;
  (* The recompute path re-adds and persists over the damage. *)
  Verdict_cache.add c2 (List.nth keys 2) sample_verdict;
  Verdict_cache.close c2;
  let c3 = Verdict_cache.open_file path in
  check "recomputed verdict persisted" true
    (Verdict_cache.find c3 (List.nth keys 2) <> None);
  Verdict_cache.close c3;
  Sys.remove path

(* A torn tail (partial last record, the crash-mid-append case) must be
   skipped without losing the intact prefix. *)
let test_cache_torn_tail () =
  let path = tmp_path ".wovc" in
  Sys.remove path;
  let c = Verdict_cache.open_file path in
  Verdict_cache.add c "whole|def2|drf0|wovc1" sample_verdict;
  Verdict_cache.close c;
  let data = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun ch ->
      Out_channel.output_string ch data;
      (* append a record cut off mid-payload *)
      let torn =
        Verdict_cache.frame "torn|def2|drf0|wovc1" sample_verdict
      in
      Out_channel.output_string ch
        (String.sub torn 0 (String.length torn - 7)));
  let c2 = Verdict_cache.open_file path in
  check "intact record survives torn tail" true
    (Verdict_cache.find c2 "whole|def2|drf0|wovc1" <> None);
  check "torn record is a miss" true
    (Verdict_cache.find c2 "torn|def2|drf0|wovc1" = None);
  check "torn tail counted corrupt" true
    ((Verdict_cache.stats c2).Verdict_cache.corrupt_skipped >= 1);
  Verdict_cache.close c2;
  Sys.remove path

(* --- retry backoff ----------------------------------------------------------- *)

let test_backoff () =
  let d ~attempt ~job_id = Batch.backoff_delay_ms ~base:100 ~attempt ~job_id in
  check_int "deterministic" (d ~attempt:1 ~job_id:7) (d ~attempt:1 ~job_id:7);
  (* Exponential envelope: base * 2^(attempt-1) <= delay < that + base. *)
  List.iter
    (fun attempt ->
      let lo = 100 * (1 lsl (attempt - 1)) in
      let v = d ~attempt ~job_id:3 in
      check "within envelope" true (v >= lo && v < lo + 100))
    [ 1; 2; 3; 4 ];
  (* Jitter decorrelates jobs: not every job gets the same delay. *)
  let delays = List.init 16 (fun j -> d ~attempt:1 ~job_id:j) in
  check "jitter varies across jobs" true
    (List.exists (fun v -> v <> List.hd delays) delays);
  check_int "zero base is immediate" 0
    (Batch.backoff_delay_ms ~base:0 ~attempt:3 ~job_id:1)

(* --- worker ------------------------------------------------------------------ *)

let test_worker_verdict () =
  let mp = prog_of "mp" in
  let machine = Option.get (Machines.find "def2") in
  match Worker.run ~model:Worker.Drf0 ~machine mp with
  | Error `Cancelled -> Alcotest.fail "uncancelled worker reported Cancelled"
  | Ok v ->
      (* mp races (it does not obey DRF0), so Definition 2 makes no
         promise: whatever the machine shows, it is not a violation. *)
      check "mp does not obey drf0" false v.Verdict_cache.v_obeys_model;
      check "racing program is never a violation" false
        v.Verdict_cache.v_violation;
      check "complete sweep" true v.Verdict_cache.v_complete;
      check "states counted" true (v.Verdict_cache.v_states > 0)

let test_worker_cancel () =
  let mp = prog_of "mp" in
  let machine = Option.get (Machines.find "def2") in
  match Worker.run ~cancel:(fun () -> true) ~model:Worker.Drf0 ~machine mp with
  | Error `Cancelled -> ()
  | Ok _ -> Alcotest.fail "cancel hook ignored"

let test_worker_obeying () =
  (* The synchronized message-pass obeys DRF0 and must appear SC on
     def2: the whole point of Definition 2. *)
  let p = prog_of "mp_sync" in
  let machine = Option.get (Machines.find "def2") in
  match Worker.run ~model:Worker.Drf0 ~machine p with
  | Error `Cancelled -> Alcotest.fail "unexpected cancel"
  | Ok v ->
      check "mp_sync obeys drf0" true v.Verdict_cache.v_obeys_model;
      check "appears SC" true v.Verdict_cache.v_appears_sc;
      check "no violation" false v.Verdict_cache.v_violation

(* --- wire protocol ------------------------------------------------------------ *)

let feed_all dec s =
  Wire.feed dec s;
  let rec drain acc =
    match Wire.next dec with
    | Ok (Some p) -> drain (p :: acc)
    | Ok None -> Ok (List.rev acc)
    | Error e -> Error e
  in
  drain []

let test_wire_roundtrip () =
  let dec = Wire.decoder () in
  let msgs = [ "HELLO weakord/1"; "SUBMIT test mp"; "OK ticket=7"; "" ] in
  let stream = String.concat "" (List.map Wire.frame msgs) in
  match feed_all dec stream with
  | Ok got -> Alcotest.(check (list string)) "all frames decode" msgs got
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_wire_incremental () =
  (* A frame split at every possible byte boundary still decodes. *)
  let payload = "RESULT 42 WAIT" in
  let s = Wire.frame payload in
  for cut = 1 to String.length s - 1 do
    let dec = Wire.decoder () in
    Wire.feed dec (String.sub s 0 cut);
    (match Wire.next dec with
    | Ok None -> ()
    | Ok (Some _) ->
        if cut < String.length s then
          Alcotest.failf "frame complete after %d bytes" cut
    | Error e -> Alcotest.failf "split at %d rejected: %s" cut e);
    Wire.feed dec (String.sub s cut (String.length s - cut));
    match Wire.next dec with
    | Ok (Some p) -> check_string "reassembled" payload p
    | Ok None -> Alcotest.failf "frame incomplete after split at %d" cut
    | Error e -> Alcotest.failf "reassembly at %d failed: %s" cut e
  done

let test_wire_latching () =
  (* After a framing error the decoder must stay dead: a byte stream
     that lost sync cannot be trusted again. *)
  let dec = Wire.decoder () in
  Wire.feed dec "nonsense without a length\n";
  (match Wire.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  Wire.feed dec (Wire.frame "PING");
  match Wire.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoder recovered after a framing error"

let test_wire_oversize () =
  let dec = Wire.decoder () in
  Wire.feed dec (Printf.sprintf "%d " (Wire.max_frame + 1));
  match Wire.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversize length accepted"

let test_wire_parse () =
  let ok s =
    match Wire.parse_request s with
    | Ok r -> r
    | Error (c, m) -> Alcotest.failf "%S rejected: %d %s" s c m
  in
  let err s =
    match Wire.parse_request s with
    | Ok _ -> Alcotest.failf "%S unexpectedly parsed" s
    | Error (code, _) -> code
  in
  (match ok "HELLO weakord/1" with
  | Wire.Hello v -> check_string "hello version" "weakord/1" v
  | _ -> Alcotest.fail "not a Hello");
  (match ok "submit seed 3 machine=def1" with
  | Wire.Submit line -> check_string "job line" "seed 3 machine=def1" line
  | _ -> Alcotest.fail "not a Submit");
  (match ok "RESULT 42 WAIT" with
  | Wire.Result { ticket; wait } ->
      check_int "ticket" 42 ticket;
      check "wait flag" true wait
  | _ -> Alcotest.fail "not a Result");
  (match ok "STATUS 7" with
  | Wire.Status 7 -> ()
  | _ -> Alcotest.fail "not STATUS 7");
  check_int "unknown verb is 404" Wire.e_unknown (err "FROBNICATE 1");
  check_int "bad ticket is 400" Wire.e_bad (err "STATUS seven");
  check_int "bare RESULT is 400" Wire.e_bad (err "RESULT");
  check_int "empty request is 400" Wire.e_bad (err "")

(* --- fuzz --------------------------------------------------------------------- *)

let test_fuzz_clean_range () =
  (* A small slice of the corpus through the full three-way oracle: the
     three implementations must agree (this is the in-process miniature
     of the 10^4-seed acceptance run). *)
  let cfg = { Fuzz.default_cfg with sim_limit = 50_000 } in
  let s = Fuzz.run cfg ~lo:0 ~hi:11 in
  check_int "all programs checked" 12 s.Fuzz.programs;
  check "many oracle comparisons" true (s.Fuzz.checks > 100);
  (match s.Fuzz.disagreements with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "oracle disagreement at seed %d: %s (%s)" d.Fuzz.d_seed
        d.Fuzz.d_check d.Fuzz.d_detail);
  check "not suspended" false s.Fuzz.suspended;
  check_int "resume point past the range" 12 s.Fuzz.next_seed;
  check_int "clean range exits 0" 0 (Fuzz.exit_code s)

let test_fuzz_deadline () =
  let cfg = { Fuzz.default_cfg with deadline_s = Some 0. } in
  let s = Fuzz.run cfg ~lo:0 ~hi:99 in
  check "deadline suspends" true s.Fuzz.suspended;
  check "resume point within range" true (s.Fuzz.next_seed <= 99);
  check_int "suspension exits 3" 3 (Fuzz.exit_code s)

let test_fuzz_quarantine_recipe () =
  (* The quarantine dossier must carry a seed-exact repro recipe even
     though no real disagreement exists to trigger it. *)
  let dir = Filename.temp_file "weakord_quar" "" in
  Sys.remove dir;
  let cfg = { Fuzz.default_cfg with quarantine = Some dir } in
  let prog = Litmus_gen.generate ~config:cfg.Fuzz.config 5 in
  let d =
    Fuzz.quarantine_seed cfg ~seed:5 ~prog ~check:"unit-test" ~detail:"forced"
  in
  (match d with
  | None -> Alcotest.fail "quarantine wrote nothing"
  | Some report ->
      let body = In_channel.with_open_bin report In_channel.input_all in
      check "report names the seed recipe" true
        (contains ~sub:"weakord gen --seed 5" body);
      check "report names the fuzz rerun" true
        (contains ~sub:"--seeds 5..5" body);
      check "litmus source written" true
        (Sys.file_exists (Filename.concat dir "seed5.litmus")));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let test_fuzz_check_seed_matches_run () =
  (* The fleet's shard workers accumulate [check_seed] reports; their
     sums must reproduce exactly what an in-process [Fuzz.run] over the
     same range tallies, or resumed fleet campaigns would drift from
     uninterrupted fuzz runs. *)
  let cfg = { Fuzz.default_cfg with sim_limit = 50_000 } in
  let lo, hi = (0, 7) in
  let s = Fuzz.run cfg ~lo ~hi in
  let checks = ref 0
  and dis = ref 0
  and sim_runs = ref 0
  and wedged = ref 0
  and skipped = ref 0
  and states = ref 0 in
  for seed = lo to hi do
    let _prog, r = Fuzz.check_seed cfg seed in
    checks := !checks + r.Fuzz.sr_checks;
    dis := !dis + List.length r.Fuzz.sr_disagreements;
    sim_runs := !sim_runs + r.Fuzz.sr_sim_runs;
    wedged := !wedged + r.Fuzz.sr_sim_wedged;
    skipped := !skipped + r.Fuzz.sr_sim_skipped;
    states := !states + r.Fuzz.sr_states
  done;
  check_int "checks agree" s.Fuzz.checks !checks;
  check_int "disagreements agree" (List.length s.Fuzz.disagreements) !dis;
  check_int "sim runs agree" s.Fuzz.sim_runs !sim_runs;
  check_int "sim wedges agree" s.Fuzz.sim_wedged !wedged;
  check_int "sim skips agree" s.Fuzz.sim_skipped !skipped;
  check_int "states agree" s.Fuzz.states_total !states

(* --- shrink ------------------------------------------------------------------- *)

let test_shrink_ddmin_minimal () =
  (* Against a pure size predicate, ddmin must reach the exact floor:
     any surviving instruction beyond it would violate 1-minimality. *)
  let prog = Litmus_gen.generate 11 in
  check "sample program is big enough" true (Shrink.instr_count prog >= 4);
  let pred p = Shrink.instr_count p >= 2 in
  let min, stats = Shrink.ddmin ~pred prog in
  check "result satisfies the predicate" true (pred min);
  check_int "shrunk to the 2-instruction floor" 2 (Shrink.instr_count min);
  check "search spent tests" true (stats.Shrink.s_tests > 0);
  check "budget not exhausted" false stats.Shrink.s_gave_up

let test_shrink_rejects_passing_input () =
  let prog = Litmus_gen.generate 3 in
  match Shrink.ddmin ~pred:(fun _ -> false) prog with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ddmin accepted a program the predicate rejects"

let test_shrink_budget_sound () =
  (* A starved budget must still return a predicate-satisfying program
     (possibly non-minimal) and own up via [s_gave_up]. *)
  let prog = Litmus_gen.generate 11 in
  let pred p = Shrink.instr_count p >= 2 in
  let min, stats = Shrink.ddmin ~max_tests:3 ~pred prog in
  check "starved result still satisfies pred" true (pred min);
  check "gave up reported" true stats.Shrink.s_gave_up

(* --- fleet internals ---------------------------------------------------------- *)

let test_fleet_unit_plan () =
  let plan = Fleet.units_of_range ~lo:0 ~hi:9 ~unit_seeds:4 in
  check "plan partitions the range" true (plan = [ (0, 3); (4, 7); (8, 9) ]);
  check "oversized unit collapses to one" true
    (Fleet.units_of_range ~lo:5 ~hi:9 ~unit_seeds:100 = [ (5, 9) ]);
  check "single-seed range" true
    (Fleet.units_of_range ~lo:7 ~hi:7 ~unit_seeds:4 = [ (7, 7) ]);
  (* Exhaustive coverage check over a few shapes: every seed in exactly
     one unit, units contiguous and ordered. *)
  List.iter
    (fun (lo, hi, us) ->
      let plan = Fleet.units_of_range ~lo ~hi ~unit_seeds:us in
      let covered =
        List.concat_map
          (fun (a, b) -> List.init (b - a + 1) (fun i -> a + i))
          plan
      in
      check "plan covers the range exactly" true
        (covered = List.init (hi - lo + 1) (fun i -> lo + i)))
    [ (0, 9, 1); (0, 9, 3); (3, 17, 5); (0, 0, 256) ]

let test_fleet_wedge_rule () =
  (* The injected-hang rule doubles as the poison-shrink predicate: it
     must be deterministic, fire only on listed seeds, and keep firing
     down to (exactly) a two-instruction program so ddmin has a floor. *)
  let prog = Litmus_gen.generate 57 in
  check "fires on a listed seed" true
    (Fleet.wedge_fires ~wedge_seeds:[ 57 ] ~seed:57 prog);
  check "ignores unlisted seeds" false
    (Fleet.wedge_fires ~wedge_seeds:[ 57 ] ~seed:58 prog);
  check "ignores an empty wedge list" false
    (Fleet.wedge_fires ~wedge_seeds:[] ~seed:57 prog);
  let min, _ =
    Shrink.ddmin ~pred:(Fleet.wedge_fires ~wedge_seeds:[ 57 ] ~seed:57) prog
  in
  check_int "poison reproducer shrinks to the wedge floor" 2
    (Shrink.instr_count min);
  check "minimal reproducer is strictly smaller" true
    (Shrink.instr_count min < Shrink.instr_count prog)

let test_job_profile_opt () =
  let jobs = parse_ok "seed 4 profile=wide\n" in
  (match (List.hd jobs).Job.source with
  | Job.Seed { config; _ } ->
      check "profile genopt lands in the config" true
        (config.Litmus_gen.profile = Litmus_gen.Wide);
      check_string "gen args reproduce the profile" "--seed 4 --profile wide"
        (Job.gen_args (List.hd jobs).Job.source)
  | _ -> Alcotest.fail "seed job not parsed as Seed");
  check "unknown profile rejected with location" true
    (let e = parse_err "seed 4 profile=sideways\n" in
     String.length e > 5 && String.sub e 0 5 = "line ")

let suite =
  ( "service",
    [
      Alcotest.test_case "job file parses and expands" `Quick test_job_parse;
      Alcotest.test_case "job file errors are located" `Quick
        test_job_parse_errors;
      Alcotest.test_case "job-list fingerprint" `Quick test_job_fingerprint;
      Alcotest.test_case "verdict cache round-trips" `Quick
        test_cache_roundtrip;
      Alcotest.test_case "cache keys on canonical text" `Quick test_cache_key;
      Alcotest.test_case "corrupt record recomputed, neighbors kept" `Quick
        test_cache_corruption;
      Alcotest.test_case "torn tail skipped" `Quick test_cache_torn_tail;
      Alcotest.test_case "backoff is deterministic and bounded" `Quick
        test_backoff;
      Alcotest.test_case "worker verdict on a racing program" `Quick
        test_worker_verdict;
      Alcotest.test_case "worker honors the cancel hook" `Quick
        test_worker_cancel;
      Alcotest.test_case "worker verdict on an obeying program" `Quick
        test_worker_obeying;
      Alcotest.test_case "wire frames round-trip" `Quick test_wire_roundtrip;
      Alcotest.test_case "wire decoder is incremental" `Quick
        test_wire_incremental;
      Alcotest.test_case "wire decoder latches on error" `Quick
        test_wire_latching;
      Alcotest.test_case "wire rejects oversize frames" `Quick
        test_wire_oversize;
      Alcotest.test_case "wire request grammar" `Quick test_wire_parse;
      Alcotest.test_case "fuzz: clean oracle over a seed range" `Quick
        test_fuzz_clean_range;
      Alcotest.test_case "fuzz: deadline suspends with resume seed" `Quick
        test_fuzz_deadline;
      Alcotest.test_case "fuzz: quarantine carries the repro recipe" `Quick
        test_fuzz_quarantine_recipe;
      Alcotest.test_case "fuzz: check_seed sums match run" `Quick
        test_fuzz_check_seed_matches_run;
      Alcotest.test_case "shrink: ddmin reaches the minimal floor" `Quick
        test_shrink_ddmin_minimal;
      Alcotest.test_case "shrink: passing input rejected" `Quick
        test_shrink_rejects_passing_input;
      Alcotest.test_case "shrink: starved budget stays sound" `Quick
        test_shrink_budget_sound;
      Alcotest.test_case "fleet: unit plan partitions the range" `Quick
        test_fleet_unit_plan;
      Alcotest.test_case "fleet: wedge rule and poison shrink floor" `Quick
        test_fleet_wedge_rule;
      Alcotest.test_case "job profile genopt round-trips" `Quick
        test_job_profile_opt;
    ] )
