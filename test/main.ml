let () =
  Alcotest.run "weakord"
    [
      Test_relation.suite;
      Test_program.suite;
      Test_litmus.suite;
      Test_litmus.file_suite;
      Test_litmus.robustness_suite;
      Test_exec.suite;
      Test_drf.suite;
      Test_axiomatic.suite;
      Test_machine.suite;
      Test_explore.suite;
      Test_engine.suite;
      Test_sim.suite;
      Test_obs.suite;
      Test_fault.suite;
      Test_fault.fuel_suite;
      Test_differential.suite;
      Test_delay.suite;
      Test_core.suite;
      Test_resilience.suite;
      Test_sym.suite;
      Test_service.suite;
    ]
