(* Differential testing on randomly generated programs.

   These are the repository's strongest checks: the paper's central theorem
   and every pair of independent implementations are tested against each
   other on programs nobody wrote by hand.  All generation is deterministic
   in the seed, so a failure message's seed reproduces the program. *)

let seeds = List.init 250 (fun i -> 7 * i)

let bigger_config =
  {
    Litmus_gen.default_config with
    Litmus_gen.max_threads = 4;
    max_instrs = 4;
    num_locs = 3;
  }

(* Two corpora: a large one of small programs (cheap enough for the
   exponential literal checker) and a smaller one of bigger programs for
   the polynomially-checkable properties. *)
let small_programs =
  List.filter_map (fun seed -> Litmus_gen.generate_live seed) seeds

let big_programs =
  List.filter_map
    (fun seed -> Litmus_gen.generate_live ~config:bigger_config (seed + 1))
    (List.init 40 (fun i -> 13 * i))

let live_programs = small_programs @ big_programs

let check_on corpus name pred =
  List.iter
    (fun prog ->
      if not (pred prog) then
        Alcotest.failf "%s fails on %s:@.%a" name (Prog.name prog) Prog.pp prog)
    corpus

let check_all name pred = check_on live_programs name pred

(* --- the paper's theorem on random programs -------------------------------- *)

let test_drf0_implies_sc_on_def1 () =
  check_all "DRF0 => def1 appears SC" (fun p ->
      (not (Drf.obeys p)) || Machines.appears_sc Machines.def1 p)

let test_drf0_implies_sc_on_def2 () =
  check_all "DRF0 => def2 appears SC" (fun p ->
      (not (Drf.obeys p)) || Machines.appears_sc Machines.def2 p)

let test_drf1_implies_sc_on_def2_rs () =
  check_all "DRF1 => def2-rs appears SC" (fun p ->
      (not (Drf.obeys ~model:Drf.DRF1 p))
      || Machines.appears_sc Machines.def2_rs p)

let test_drf1_implies_sc_on_rc () =
  check_all "DRF1 => rc appears SC" (fun p ->
      (not (Drf.obeys ~model:Drf.DRF1 p)) || Machines.appears_sc Machines.rc p)

(* --- independent implementations agree -------------------------------------- *)

let test_axiomatic_sc_equals_operational () =
  check_all "axiomatic SC = operational SC" (fun p ->
      Final.Set.equal (Models.outcomes Models.sc p) (Sc.outcomes p))

let test_drf_checker_equals_naive () =
  check_on small_programs "sync-order DRF0 checker = literal Definition 3"
    (fun p -> Drf.obeys p = Drf.obeys_naive p)

let test_drf1_checker_equals_naive () =
  check_on small_programs "sync-order DRF1 checker = literal Definition 3"
    (fun p -> Drf.obeys ~model:Drf.DRF1 p = Drf.obeys_naive ~model:Drf.DRF1 p)

let test_wbuf_within_tso () =
  check_all "wbuf machine within TSO axioms" (fun p ->
      Final.Set.subset
        (Machines.outcomes Machines.wbuf p)
        (Models.outcomes Models.tso p))

let test_machines_within_axioms () =
  check_all "def1 machine within def1 axioms" (fun p ->
      Final.Set.subset
        (Machines.outcomes Machines.def1 p)
        (Models.outcomes Models.def1 p));
  check_all "def2 machine within def2 axioms" (fun p ->
      Final.Set.subset
        (Machines.outcomes Machines.def2 p)
        (Models.outcomes Models.def2 p))

(* --- structural sanity -------------------------------------------------------- *)

let test_sc_within_all_machines () =
  List.iter
    (fun m ->
      check_all
        (Printf.sprintf "SC within %s" (Machines.name m))
        (fun p -> Final.Set.subset (Sc.outcomes p) (Machines.outcomes m p)))
    Machines.all

let test_machine_hierarchy () =
  (* def1 is strictly more constrained than def2 (def2 only relaxes): every
     def1 outcome is a def2 outcome. *)
  check_all "def1 outcomes within def2 outcomes" (fun p ->
      Final.Set.subset
        (Machines.outcomes Machines.def1 p)
        (Machines.outcomes Machines.def2 p));
  check_all "def2 outcomes within def2-rs outcomes" (fun p ->
      Final.Set.subset
        (Machines.outcomes Machines.def2 p)
        (Machines.outcomes Machines.def2_rs p))

let test_model_hierarchy () =
  check_all "sc within def1 axioms" (fun p ->
      Final.Set.subset (Models.outcomes Models.sc p) (Models.outcomes Models.def1 p));
  check_all "def1 axioms within def2 axioms" (fun p ->
      Final.Set.subset
        (Models.outcomes Models.def1 p)
        (Models.outcomes Models.def2 p));
  check_all "def2 axioms within coherence" (fun p ->
      Final.Set.subset
        (Models.outcomes Models.def2 p)
        (Models.outcomes Models.coherence_only p))

let test_drf1_weaker_than_drf0 () =
  check_all "DRF1-clean implies DRF0-clean" (fun p ->
      (not (Drf.obeys ~model:Drf.DRF1 p)) || Drf.obeys p)

let test_lemma1_on_drf0_programs () =
  check_all "Lemma 1 on def2 candidates of DRF0 programs" (fun p ->
      (not (Drf.obeys p))
      || List.for_all Lemma1.holds (Models.candidates Models.def2 p))

let test_print_parse_roundtrip_random () =
  (* The litmus printer and parser are exact inverses on every generated
     program (including fenced variants, which exercise the Fence cell). *)
  List.iter
    (fun prog ->
      List.iter
        (fun p ->
          let p' = Litmus_parse.parse_string (Litmus_print.to_string p) in
          if
            not
              (List.for_all2
                 (List.for_all2 Instr.equal)
                 (Prog.threads p) (Prog.threads p'))
          then Alcotest.failf "round-trip broke %s:@.%a" (Prog.name p) Prog.pp p)
        [ prog; Delay_set.with_fences prog ])
    live_programs

let test_generator_determinism () =
  List.iter
    (fun seed ->
      let a = Litmus_gen.generate seed and b = Litmus_gen.generate seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d deterministic" seed)
        true
        (List.for_all2
           (List.for_all2 Instr.equal)
           (Prog.threads a) (Prog.threads b)))
    [ 0; 1; 42; 1000 ]

let profile_config p =
  { Litmus_gen.default_config with Litmus_gen.profile = p }

let test_profile_determinism () =
  (* (seed, config) → program stays a pure function under every profile,
     and the name mapping round-trips (records carry the name). *)
  List.iter
    (fun p ->
      let config = profile_config p in
      List.iter
        (fun seed ->
          let a = Litmus_gen.generate ~config seed
          and b = Litmus_gen.generate ~config seed in
          Alcotest.(check string)
            (Printf.sprintf "%s seed %d deterministic"
               (Litmus_gen.profile_name p) seed)
            (Litmus_print.to_string a) (Litmus_print.to_string b))
        [ 0; 1; 42; 1000 ];
      Alcotest.(check bool)
        (Litmus_gen.profile_name p ^ " name round-trips")
        true
        (Litmus_gen.profile_of_string (Litmus_gen.profile_name p) = Some p))
    Litmus_gen.all_profiles

let test_profile_golden () =
  (* Pinned seed→program digests: the Default mapping is frozen by the
     determinism contract (bare [generate] must agree with it), and the
     other profiles are distinct mappings whose drift would silently
     invalidate every recorded repro recipe — so any change here must be
     a deliberate engine-version bump. *)
  let digest p seed =
    Digest.to_hex
      (Digest.string
         (Litmus_print.to_string
            (Litmus_gen.generate ~config:(profile_config p) seed)))
  in
  Alcotest.(check string)
    "explicit Default = bare generate"
    (Digest.to_hex (Digest.string (Litmus_print.to_string (Litmus_gen.generate 42))))
    (digest Litmus_gen.Default 42);
  List.iter
    (fun (p, expect) ->
      Alcotest.(check string)
        (Printf.sprintf "profile %s seed 42 pinned" (Litmus_gen.profile_name p))
        expect (digest p 42))
    [
      (Litmus_gen.Default, "dec21493483a56f85795e5bcd5dbe2a1");
      (Litmus_gen.Wide, "f335fda76eafd572a59a747dcf48d5ee");
      (Litmus_gen.Deep_await, "4c66da43afe0aa31d36f263120f96ab9");
      (Litmus_gen.Mixed_sync, "3e7db0fa297a59ae64e0ddf7e7a23b4e");
    ]

let test_profile_shapes () =
  (* Each profile must actually reach the corpus shape it exists for. *)
  let gen p seed = Litmus_gen.generate ~config:(profile_config p) seed in
  let seeds = List.init 60 Fun.id in
  Alcotest.(check bool)
    "wide exceeds the default thread cap" true
    (List.exists
       (fun s ->
         Prog.num_threads (gen Litmus_gen.Wide s)
         > Litmus_gen.default_config.Litmus_gen.max_threads)
       seeds);
  let stacks_awaits p =
    List.exists
      (fun th ->
        List.length
          (List.filter (function Instr.Await _ -> true | _ -> false) th)
        >= 2)
      (Prog.threads p)
  in
  Alcotest.(check bool)
    "deep-await stacks awaits in one thread" true
    (List.exists (fun s -> stacks_awaits (gen Litmus_gen.Deep_await s)) seeds);
  let mixes p =
    let locs k =
      List.concat_map
        (List.filter_map (fun i ->
             if Instr.kind i = Some k then Instr.location i else None))
      (Prog.threads p)
    in
    List.exists (fun l -> List.mem l (locs Instr.Sync)) (locs Instr.Data)
  in
  Alcotest.(check bool)
    "mixed-sync reuses a location across kinds" true
    (List.exists (fun s -> mixes (gen Litmus_gen.Mixed_sync s)) seeds);
  Alcotest.(check bool)
    "default keeps data and sync locations disjoint" false
    (List.exists (fun s -> mixes (gen Litmus_gen.Default s)) seeds)

let test_generated_programs_validate () =
  List.iter
    (fun prog ->
      match Prog.validate prog with
      | Ok () -> ()
      | Error ((Prog.Unassigned_register _ :: _ | _) as es) ->
          (* Generated registers are always fresh loads, so the only errors
             would be real bugs. *)
          Alcotest.failf "%s: %a" (Prog.name prog)
            Fmt.(list ~sep:comma Prog.pp_error)
            es)
    live_programs

let test_corpus_size () =
  (* The filter should keep most generated programs. *)
  Alcotest.(check bool)
    "at least 200 live programs" true
    (List.length live_programs >= 200)

let suite =
  let t name f = Alcotest.test_case name `Slow f in
  let tq name f = Alcotest.test_case name `Quick f in
  ( "differential",
    [
      tq "generator determinism" test_generator_determinism;
      tq "profile determinism" test_profile_determinism;
      tq "profile mappings pinned" test_profile_golden;
      tq "profile shapes reached" test_profile_shapes;
      t "print/parse round-trip on random programs" test_print_parse_roundtrip_random;
      tq "generated programs validate" test_generated_programs_validate;
      tq "live corpus size" test_corpus_size;
      t "DRF0 => def1 appears SC" test_drf0_implies_sc_on_def1;
      t "DRF0 => def2 appears SC" test_drf0_implies_sc_on_def2;
      t "DRF1 => def2-rs appears SC" test_drf1_implies_sc_on_def2_rs;
      t "DRF1 => rc appears SC" test_drf1_implies_sc_on_rc;
      t "axiomatic SC = operational SC" test_axiomatic_sc_equals_operational;
      t "DRF0 checker = naive" test_drf_checker_equals_naive;
      t "DRF1 checker = naive" test_drf1_checker_equals_naive;
      t "machines within axioms" test_machines_within_axioms;
      t "wbuf within TSO axioms" test_wbuf_within_tso;
      t "SC within all machines" test_sc_within_all_machines;
      t "machine hierarchy" test_machine_hierarchy;
      t "model hierarchy" test_model_hierarchy;
      t "DRF1-clean implies DRF0-clean" test_drf1_weaker_than_drf0;
      t "Lemma 1 on random DRF0 programs" test_lemma1_on_drf0_programs;
    ] )
