#!/usr/bin/env bash
# Chaos-test the sharded fuzz fleet against the real binary.  A 150-seed
# campaign with an injected wedge seed must
#   - complete with exit 4, quarantining exactly the wedge seed with a
#     ddmin-minimized reproducer strictly smaller than the generated
#     program, after hang-hunting bisection isolates it;
#   - serve live campaign gauges over the STATS socket;
#   - survive kill -9 of a shard mid-unit (the unit is requeued whole)
#     and a SIGTERM drain (exit 3, checkpoint written): resumed, the
#     JSONL stream is identical to the uninterrupted run modulo the
#     volatile cached/attempts/ms trailer;
#   - reject a resume against a different campaign (exit 2).
set -u

WEAKORD="$1"
fails=0

fail() {
  echo "FAIL: $*" >&2
  fails=$((fails + 1))
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# 150 seeds in 25-seed units across 3 shards; seed 57 wedges its shard.
# A 1s heartbeat budget and 2 retries keep the hang hunt fast: first
# hang bisects 50..74 around 57, second hang poisons it.
FLAGS=(--count 150 --unit 25 --shards 3 --wedge-seed 57
  --hang-timeout 1 --retries 2 --backoff 50 --quarantine "$tmp/quar")

# Strip the volatile trailer; what remains must be identical across runs.
norm() {
  sed -E 's/,"cached":(true|false),"attempts":[0-9]+,"ms":[0-9.]+\}/}/' "$1" \
    | sort
}

# --- 1. uninterrupted reference: wedge hunted, minimized, quarantined --------
"$WEAKORD" fleet "${FLAGS[@]}" -o "$tmp/ref.jsonl" 2> "$tmp/ref.err"
code=$?
if [ "$code" -ne 4 ]; then
  fail "fleet with a wedge seed: expected exit 4, got $code"
fi
if [ "$(grep -c '"status":"poison"' "$tmp/ref.jsonl")" -ne 1 ]; then
  fail "expected exactly one poison record"
fi
if ! grep '"status":"poison"' "$tmp/ref.jsonl" | grep -q '"seed":57'; then
  fail "poison record does not name the wedge seed"
fi
if ! grep '"status":"poison"' "$tmp/ref.jsonl" | grep -q 'heartbeat stalled'; then
  fail "poison record lacks the hang diagnosis"
fi
if grep -q '"status":"disagreement"' "$tmp/ref.jsonl"; then
  fail "clean corpus produced a disagreement record"
fi
# every seed except the poison was checked exactly once
total="$(grep '"status":"done"' "$tmp/ref.jsonl" \
  | grep -o '"programs":[0-9]*' | cut -d: -f2 \
  | awk '{ s += $1 } END { print s }')"
if [ "$total" -ne 149 ]; then
  fail "done units cover $total seed(s), expected 149"
fi
# the dossier ships source, report and a strictly smaller reproducer
if [ ! -s "$tmp/quar/seed57.litmus" ] || [ ! -s "$tmp/quar/seed57.report" ]; then
  fail "wedge dossier incomplete (missing source or report)"
fi
if [ ! -s "$tmp/quar/seed57.min.litmus" ]; then
  fail "wedge dossier lacks the minimized reproducer"
else
  full="$(grep -c ';' "$tmp/quar/seed57.litmus")"
  mini="$(grep -c ';' "$tmp/quar/seed57.min.litmus")"
  if [ "$mini" -ge "$full" ]; then
    fail "minimized reproducer ($mini rows) not smaller than original ($full)"
  fi
fi
if ! grep -q 'gen flags' "$tmp/quar/seed57.report"; then
  fail "dossier does not record the generator flag set"
fi

# --- 2. kill -9 a shard + SIGTERM drain + resume == uninterrupted ------------
SOCK="$tmp/fleet.sock"
"$WEAKORD" fleet "${FLAGS[@]}" --verbose -o "$tmp/b.jsonl" \
  --checkpoint "$tmp/fleet.ckpt" --stats-socket "$SOCK" \
  2> "$tmp/b.err" &
FPID=$!

# Live gauges over the wire protocol while the campaign runs.
stats=""
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && stats="$(echo STATS | "$WEAKORD" client "$SOCK" 2>/dev/null)"
  [ -n "$stats" ] && break
  sleep 0.05
done
if [ -z "$stats" ]; then
  fail "no STATS response from the fleet socket"
elif ! echo "$stats" | grep -q '"shards"'; then
  fail "STATS response lacks the shard gauge: $stats"
fi

# Murder the shard working unit 0..24 mid-unit: the unit must be
# requeued whole, not split (record identity depends on it).
wpid=""
for _ in $(seq 1 100); do
  wpid="$(grep -o 'shard [0-9]* started unit 0\.\.24' "$tmp/b.err" 2>/dev/null \
    | head -1 | grep -o '[0-9]*' | head -1)"
  [ -n "$wpid" ] && break
  sleep 0.05
done
if [ -n "$wpid" ]; then
  kill -9 "$wpid" 2>/dev/null
else
  fail "could not find the unit 0..24 shard pid in the verbose log"
fi

sleep 0.6 # let the kill land and some units finish before draining
kill -TERM "$FPID" 2>/dev/null
wait "$FPID"
code=$?
if [ "$code" -ne 3 ]; then
  fail "SIGTERM mid-campaign: expected exit 3 (suspended), got $code"
fi
if [ ! -s "$tmp/fleet.ckpt" ]; then
  fail "drained fleet left no checkpoint"
fi
if ! grep -q 'killed by SIGKILL' "$tmp/b.err"; then
  fail "the external kill -9 did not surface as a retried attempt"
fi

"$WEAKORD" fleet "${FLAGS[@]}" -o "$tmp/b.jsonl" \
  --checkpoint "$tmp/fleet.ckpt" --resume "$tmp/fleet.ckpt" \
  2> "$tmp/resume.err"
code=$?
if [ "$code" -ne 4 ]; then
  fail "resumed fleet: expected exit 4, got $code"
fi
if ! diff <(norm "$tmp/ref.jsonl") <(norm "$tmp/b.jsonl"); then
  fail "kill -9 + drain + resume diverged from the uninterrupted run"
fi

# --- 3. a resume against a different campaign is rejected loudly -------------
"$WEAKORD" fleet "${FLAGS[@]}" --wedge-seed 99 \
  --resume "$tmp/fleet.ckpt" >/dev/null 2> "$tmp/reject.err"
code=$?
if [ "$code" -ne 2 ]; then
  fail "resume of a different campaign: expected exit 2, got $code"
fi
if ! grep -q 'different campaign' "$tmp/reject.err"; then
  fail "resume rejection does not explain the fingerprint mismatch"
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails fleet chaos check(s) failed" >&2
  exit 1
fi
echo "fleet chaos: ok"
