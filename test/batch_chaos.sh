#!/usr/bin/env bash
# Chaos-test the batch supervisor against the real binary: a >=100-job
# corpus with an injected poison (wedge) job must
#   - complete with the wedge quarantined (exit 4) and its diagnostics
#     (timeout reason, captured stderr marker) in the JSONL record;
#   - survive kill -9 of a worker mid-job: the job is retried, the batch
#     result is unchanged;
#   - drain on SIGTERM (exit 3, checkpoint written) and, resumed, produce
#     the same result set as an uninterrupted run modulo the volatile
#     fields (cached/attempts/ms);
#   - serve >=95% of a second identical run from the persistent verdict
#     cache;
#   - reject a resume against an edited job file (exit 2).
set -u

WEAKORD="$1"
fails=0

fail() {
  echo "FAIL: $*" >&2
  fails=$((fails + 1))
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# 103 jobs: two builtins, 100 generated programs, one poison job.
{
  echo "machine def2"
  echo "test mp"
  echo "test mp_sync"
  echo "seeds 0..99"
  echo "wedge"
} > "$tmp/jobs.txt"
NJOBS=103

# Fast flags shared by every run that must produce the same records.
FLAGS=(--workers 4 --timeout 1.0 --retries 2 --backoff 50)

# Strip the volatile trailer and order by completion-independent content:
# what remains must be identical across runs.
norm() {
  sed -E 's/,"cached":(true|false),"attempts":[0-9]+,"ms":[0-9.]+\}/}/' "$1" \
    | sort
}

# --- 1. uninterrupted reference: completes, quarantines the wedge ------------
"$WEAKORD" batch "$tmp/jobs.txt" "${FLAGS[@]}" -o "$tmp/ref.jsonl" \
  2> "$tmp/ref.err"
code=$?
if [ "$code" -ne 4 ]; then
  fail "batch with a poison job: expected exit 4, got $code"
fi
if [ "$(wc -l < "$tmp/ref.jsonl")" -ne "$NJOBS" ]; then
  fail "expected $NJOBS result records, got $(wc -l < "$tmp/ref.jsonl")"
fi
if ! grep -q '"status":"quarantined"' "$tmp/ref.jsonl"; then
  fail "no quarantine record for the wedge job"
fi
if ! grep '"status":"quarantined"' "$tmp/ref.jsonl" \
  | grep -q 'timeout: SIGKILL'; then
  fail "quarantine record lacks the timeout diagnostic"
fi
if ! grep '"status":"quarantined"' "$tmp/ref.jsonl" \
  | grep -q 'wedged on purpose'; then
  fail "quarantine record lacks the worker's captured stderr"
fi
if [ "$(grep -c '"status":"ok"' "$tmp/ref.jsonl")" -ne $((NJOBS - 1)) ]; then
  fail "not every healthy job produced a verdict"
fi

# --- 2. kill -9 a worker mid-job: retried, same result set -------------------
"$WEAKORD" batch "$tmp/jobs.txt" "${FLAGS[@]}" --verbose \
  -o "$tmp/k9.jsonl" 2> "$tmp/k9.err" &
BPID=$!
# The wedge worker is the only long-lived one; find its pid from the
# verbose lifecycle log and SIGKILL it mid-attempt.
wpid=""
for _ in $(seq 1 100); do
  wpid="$(grep -o 'worker [0-9]* started job 102' "$tmp/k9.err" 2>/dev/null \
    | head -1 | grep -o '[0-9]*' | head -1)"
  [ -n "$wpid" ] && break
  sleep 0.05
done
if [ -n "$wpid" ]; then
  sleep 0.2 # let the attempt get going before murdering it
  kill -9 "$wpid" 2>/dev/null
else
  fail "could not find the wedge worker's pid in the verbose log"
fi
wait "$BPID"
code=$?
if [ "$code" -ne 4 ]; then
  fail "batch with a SIGKILLed worker: expected exit 4, got $code"
fi
if ! grep -q 'killed by SIGKILL' "$tmp/k9.err"; then
  fail "the external kill -9 did not surface as a retried attempt"
fi
if ! diff -q <(norm "$tmp/ref.jsonl") <(norm "$tmp/k9.jsonl") >/dev/null; then
  fail "kill -9 of a worker changed the batch result set"
fi

# --- 3. SIGTERM drain + resume == uninterrupted ------------------------------
"$WEAKORD" batch "$tmp/jobs.txt" "${FLAGS[@]}" \
  -o "$tmp/drain.jsonl" --checkpoint "$tmp/batch.ckpt" \
  2> "$tmp/drain.err" &
BPID=$!
sleep 0.4 # the wedge alone keeps the batch alive past 2s
kill -TERM "$BPID" 2>/dev/null
wait "$BPID"
code=$?
if [ "$code" -ne 3 ]; then
  fail "SIGTERM mid-batch: expected exit 3 (suspended), got $code"
fi
if [ ! -s "$tmp/batch.ckpt" ]; then
  fail "drained batch left no checkpoint"
fi
"$WEAKORD" batch "$tmp/jobs.txt" "${FLAGS[@]}" \
  -o "$tmp/drain.jsonl" --checkpoint "$tmp/batch.ckpt" \
  --resume "$tmp/batch.ckpt" 2> "$tmp/resume.err"
code=$?
if [ "$code" -ne 4 ]; then
  fail "resumed batch: expected exit 4, got $code"
fi
if ! diff <(norm "$tmp/ref.jsonl") <(norm "$tmp/drain.jsonl"); then
  fail "drain + resume diverged from the uninterrupted run"
fi

# a resume against an edited job list must be rejected loudly
echo "test dekker" >> "$tmp/jobs.txt"
"$WEAKORD" batch "$tmp/jobs.txt" "${FLAGS[@]}" \
  --resume "$tmp/batch.ckpt" >/dev/null 2> "$tmp/reject.err"
code=$?
if [ "$code" -ne 2 ]; then
  fail "resume against an edited job file: expected exit 2, got $code"
fi
if ! grep -q 'fingerprint' "$tmp/reject.err"; then
  fail "resume rejection does not explain the fingerprint mismatch"
fi
# restore the original corpus for the cache phase
head -n -1 "$tmp/jobs.txt" > "$tmp/jobs2.txt" && mv "$tmp/jobs2.txt" "$tmp/jobs.txt"

# --- 4. persistent verdict cache: second run >=95% served --------------------
"$WEAKORD" batch "$tmp/jobs.txt" "${FLAGS[@]}" --cache "$tmp/verdicts.wovc" \
  -o "$tmp/cold.jsonl" 2>/dev/null
"$WEAKORD" batch "$tmp/jobs.txt" "${FLAGS[@]}" --cache "$tmp/verdicts.wovc" \
  -o "$tmp/warm.jsonl" 2> "$tmp/warm.err"
hits="$(grep -c '"cached":true' "$tmp/warm.jsonl")"
want=$((NJOBS * 95 / 100))
if [ "$hits" -lt "$want" ]; then
  fail "warm run served $hits/$NJOBS from cache (needed >= $want)"
fi
if ! grep -q 'served from cache' "$tmp/warm.err"; then
  fail "batch summary does not report cache hits"
fi
if ! diff -q <(norm "$tmp/cold.jsonl") <(norm "$tmp/warm.jsonl") >/dev/null; then
  fail "cached verdicts differ from computed ones"
fi
# a corrupted cache record degrades to a recompute, never a failure
if [ -s "$tmp/verdicts.wovc" ]; then
  size="$(wc -c < "$tmp/verdicts.wovc")"
  dd if=/dev/zero of="$tmp/verdicts.wovc" bs=1 seek=$((size / 2)) count=8 \
    conv=notrunc 2>/dev/null
  "$WEAKORD" batch "$tmp/jobs.txt" "${FLAGS[@]}" --cache "$tmp/verdicts.wovc" \
    -o "$tmp/corrupt.jsonl" 2> "$tmp/corrupt.err"
  code=$?
  if [ "$code" -ne 4 ]; then
    fail "batch over a corrupted cache: expected exit 4, got $code"
  fi
  if ! grep -q 'corrupt record' "$tmp/corrupt.err"; then
    fail "summary does not count the corrupt cache records"
  fi
  if ! diff -q <(norm "$tmp/ref.jsonl") <(norm "$tmp/corrupt.jsonl") >/dev/null; then
    fail "corrupted cache changed the batch result set"
  fi
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails batch chaos check(s) failed" >&2
  exit 1
fi
echo "batch chaos: ok"
