(* Symmetry reduction: the automorphism group, the machines' [permute]
   implementations, orbit canonicalization, the sym/no-sym differential,
   and the syntactic program canonicalizer behind the batch service's
   symmetry cache key.

   The load-bearing properties:
   - orbit canonicalization is idempotent and constant on orbits (that is
     what makes the transposition-table probe sound);
   - every automorphism permutes the reachable key set (the machine-level
     [permute] really is an automorphism of the transition graph);
   - outcome sets are identical with the reduction on and off, and the
     reduced sweep never expands more states;
   - [Prog_canon.text] is invariant under thread permutation and
     location/register renaming, and distinguishes non-isomorphic
     programs. *)

let prog_of name =
  (Option.get (Litmus_classics.find name)).Litmus_classics.prog

(* --- machine-level orbit properties ---------------------------------- *)

module Probe (M : Machine_sig.MACHINE) = struct
  module H = Hashtbl.Make (struct
    type t = M.key

    let equal = M.equal
    let hash = M.hash
  end)

  (* Raw BFS (no reduction): the full reachable key set, or a prefix if
     the cap is hit.  The pointwise properties below hold on any prefix;
     the image-closure check needs the full set and is skipped on
     truncation. *)
  let reachable_keys prog cap =
    let seen = H.create 1024 in
    let q = Queue.create () in
    let add st =
      let k = M.canon st in
      if not (H.mem seen k) then (
        H.replace seen k ();
        Queue.push st q)
    in
    add (M.initial prog);
    let complete = ref true in
    while not (Queue.is_empty q) do
      if H.length seen > cap then (
        complete := false;
        Queue.clear q)
      else
        let st = Queue.pop q in
        List.iter add (M.successors prog st)
    done;
    (seen, !complete)

  let orbit_min g k =
    List.fold_left
      (fun acc p ->
        let k' = M.permute p k in
        if compare k' acc < 0 then k' else acc)
      k g.Sym.perms

  let check name prog =
    let g = Sym.of_prog prog in
    if g.Sym.order <= 1 then
      Alcotest.failf "%s/%s: expected a nontrivial automorphism group" name
        M.name;
    let seen, complete = reachable_keys prog 60_000 in
    (* Every automorphism maps reachable keys to reachable keys — checked
       only when the probe saw the whole graph (on a prefix the image may
       legitimately land past the cap). *)
    if complete then
      List.iter
        (fun p ->
          H.iter
            (fun k () ->
              if not (H.mem seen (M.permute p k)) then
                Alcotest.failf
                  "%s/%s: image of a reachable key is unreachable" name
                  M.name)
            seen)
        g.Sym.perms;
    H.iter
      (fun k () ->
        let m = orbit_min g k in
        if not (M.equal (orbit_min g m) m) then
          Alcotest.failf "%s/%s: orbit_min is not idempotent" name M.name;
        List.iter
          (fun p ->
            if not (M.equal (orbit_min g (M.permute p k)) m) then
              Alcotest.failf
                "%s/%s: orbit_min differs across one orbit" name M.name)
          g.Sym.perms)
      seen
end

module Probe_def2 = Probe (M_def2.Base)
module Probe_wbuf = Probe (M_wbuf)
module Probe_ooo = Probe (M_ooo)

let test_orbit_properties () =
  List.iter
    (fun name ->
      let prog = prog_of name in
      Probe_def2.check name prog;
      Probe_wbuf.check name prog;
      Probe_ooo.check name prog)
    [ "iriw"; "big3" ]

let test_group_orders () =
  let order name = (Sym.of_prog (prog_of name)).Sym.order in
  Alcotest.(check int) "iriw group order" 2 (order "iriw");
  Alcotest.(check int) "big3 group order" 3 (order "big3");
  Alcotest.(check int) "big4 group order" 4 (order "big4")

(* --- sym / no-sym differential --------------------------------------- *)

let machines () =
  List.map
    (fun n -> Option.get (Machines.find n))
    [ "def2"; "wbuf"; "ooo" ]

let explore_states ~sym m prog =
  let rcfg = { Explore.rcfg_default with Explore.sym } in
  let r = Machines.explore ~rcfg m prog in
  Alcotest.(check bool) "complete" true
    (Explore.is_complete r.Explore.result);
  (Explore.bounded_value r.Explore.result,
   r.Explore.stats.Explore.states_expanded)

let check_differential label m prog =
  let set_off, states_off = explore_states ~sym:false m prog in
  let set_on, states_on = explore_states ~sym:true m prog in
  if not (Final.Set.equal set_off set_on) then
    Alcotest.failf "%s/%s: symmetry reduction changed the outcome set"
      label (Machines.name m);
  if states_on > states_off then
    Alcotest.failf "%s/%s: reduced sweep expanded more states (%d > %d)"
      label (Machines.name m) states_on states_off

let test_differential_classics () =
  List.iter
    (fun name ->
      let prog = prog_of name in
      List.iter (fun m -> check_differential name m prog) (machines ()))
    [ "iriw"; "big3"; "dekker"; "mp_sync" ]

let test_differential_generated () =
  (* Generated corpus: most seeds have trivial groups (the reduction must
     be an exact no-op there), a few are symmetric — both sides of the
     contract get exercised. *)
  let seeds = List.init 12 Fun.id in
  let progs =
    List.filter_map
      (fun seed -> Litmus_gen.generate_live ~max_attempts:20 seed)
      seeds
  in
  Alcotest.(check bool) "some generated programs" true (progs <> []);
  List.iter
    (fun prog ->
      List.iter
        (fun m -> check_differential (Prog.name prog) m prog)
        (machines ()))
    progs

let test_reduction_bites () =
  (* The acceptance bar: on big3 at least one machine drops >= 30% of its
     states under symmetry, outcomes identical (checked above). *)
  let prog = prog_of "big3" in
  let best =
    List.fold_left
      (fun acc m ->
        let _, off = explore_states ~sym:false m prog in
        let _, on = explore_states ~sym:true m prog in
        let pct =
          float_of_int (off - on) /. float_of_int off *. 100.
        in
        Float.max acc pct)
      0. (machines ())
  in
  if best < 30. then
    Alcotest.failf "big3: best state reduction %.1f%% < 30%%" best

let test_sc_differential () =
  List.iter
    (fun name ->
      let prog = prog_of name in
      let set_off, states_off, _ =
        Sc.explore_counted ~reduce:true ~sym:false prog
      in
      let set_on, states_on, _ =
        Sc.explore_counted ~reduce:true ~sym:true prog
      in
      Alcotest.(check bool) (name ^ ": sc outcome sets equal") true
        (Final.Set.equal set_off set_on);
      Alcotest.(check bool) (name ^ ": sc states not worse") true
        (states_on <= states_off))
    [ "iriw"; "big3" ]

(* --- outcome-set closure under the group ------------------------------ *)

let test_final_closure () =
  List.iter
    (fun name ->
      let prog = prog_of name in
      let g = Sym.of_prog prog in
      List.iter
        (fun m ->
          let set = Machines.outcomes m prog in
          List.iter
            (fun p ->
              let image = Final.Set.map (Sym.apply_final p) set in
              if not (Final.Set.equal image set) then
                Alcotest.failf
                  "%s/%s: outcome set is not closed under the group" name
                  (Machines.name m))
            g.Sym.perms)
        (machines ()))
    [ "iriw"; "big3" ]

(* --- syntactic program canonicalization ------------------------------- *)

let sb_a =
  "name a\n\
   { x=0; y=0 }\n\
   P0         | P1         ;\n\
   W x 1      | W y 1      ;\n\
   r0 := R y  | r1 := R x  ;\n\
   exists (0:r0=0)\n"

(* [sb_a] with the threads swapped, locations renamed x<->a-style and
   fresh register names — a pure renaming, so the canonical text must be
   identical. *)
let sb_b =
  "name b\n\
   { a=0; b=0 }\n\
   P0         | P1         ;\n\
   W b 1      | W a 1      ;\n\
   s9 := R a  | t3 := R b  ;\n\
   exists (1:t3=0)\n"

(* Not a renaming of [sb_a]: one written value differs. *)
let sb_c =
  "name c\n\
   { x=0; y=0 }\n\
   P0         | P1         ;\n\
   W x 2      | W y 1      ;\n\
   r0 := R y  | r1 := R x  ;\n\
   exists (0:r0=0)\n"

let test_prog_canon () =
  let parse = Litmus_parse.parse_string in
  let a = parse sb_a and b = parse sb_b and c = parse sb_c in
  Alcotest.(check string) "renaming-invariant" (Prog_canon.text a)
    (Prog_canon.text b);
  Alcotest.(check bool) "distinguishes non-isomorphic programs" true
    (Prog_canon.text a <> Prog_canon.text c);
  (* Idempotence at the program level: canonical text is a function of
     the canonical text (re-deriving it from the same program is
     stable). *)
  Alcotest.(check string) "stable" (Prog_canon.text a) (Prog_canon.text a)

let test_sym_cache_key () =
  let parse = Litmus_parse.parse_string in
  let a = parse sb_a and b = parse sb_b in
  let k p = Verdict_cache.sym_key ~prog:p ~machine:"def2" ~model:"drf0" in
  Alcotest.(check string) "isomorphic programs share the sym key" (k a)
    (k b);
  Alcotest.(check bool) "sym key is not the exact key" true
    (k a <> Verdict_cache.key ~prog:a ~machine:"def2" ~model:"drf0");
  Alcotest.(check bool) "sym key separates machines" true
    (k a <> Verdict_cache.sym_key ~prog:a ~machine:"ooo" ~model:"drf0")

let suite =
  ( "sym",
    [
      Alcotest.test_case "group orders" `Quick test_group_orders;
      Alcotest.test_case "orbit canonicalization properties" `Slow
        test_orbit_properties;
      Alcotest.test_case "differential on classics" `Quick
        test_differential_classics;
      Alcotest.test_case "differential on generated programs" `Slow
        test_differential_generated;
      Alcotest.test_case "reduction reaches the 30%% floor" `Quick
        test_reduction_bites;
      Alcotest.test_case "sc enumerator differential" `Quick
        test_sc_differential;
      Alcotest.test_case "outcome sets closed under the group" `Quick
        test_final_closure;
      Alcotest.test_case "program canonicalization" `Quick test_prog_canon;
      Alcotest.test_case "symmetry cache key" `Quick test_sym_cache_key;
    ] )
