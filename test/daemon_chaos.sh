#!/usr/bin/env bash
# Chaos-test the weakord daemon against the real binary, through the
# bundled protocol client:
#   - two concurrent clients submit overlapping job sets; both see their
#     verdicts, the overlap is served from the shared cache (>=1
#     cross-client "cached":true), and the normalized verdicts agree
#     with a direct `weakord batch` run over the same corpus;
#   - protocol enforcement: requests before HELLO are 401, unknown
#     verbs and tickets are 404;
#   - SIGTERM mid-stream drains gracefully: exit 3, checkpoint written,
#     and a --resume daemon finishes the orphaned tickets so the
#     combined JSONL still matches an uninterrupted batch run.
set -u

WEAKORD="$1"
fails=0

fail() {
  echo "FAIL: $*" >&2
  fails=$((fails + 1))
}

tmp="$(mktemp -d)"
SRV=""
cleanup() {
  [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT

SOCK="$tmp/d.sock"

# Normalize JSONL for comparison across daemon/batch runs: job ids are
# ticket numbers on the daemon side, and cached/attempts/ms are
# volatile, so strip both and sort.
norm() {
  sed -E -e 's/,"cached":(true|false),"attempts":[0-9]+,"ms":[0-9.]+\}/}/' \
    -e 's/^\{"job":[0-9]+,/\{/' "$@" | sort
}

# Wait (briefly) for the daemon to bind its socket.
await_sock() {
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.05
  done
  return 1
}

# Poll STATS until the daemon reports >=N completed tickets.
await_completed() {
  local want="$1" got=""
  for _ in $(seq 1 300); do
    got="$(echo STATS | "$WEAKORD" client "$SOCK" 2>/dev/null \
      | grep -o '"completed":[0-9]*' | head -1 | cut -d: -f2)"
    [ -n "$got" ] && [ "$got" -ge "$want" ] && return 0
    sleep 0.1
  done
  return 1
}

# --- reference: the same corpus through weakord batch ------------------------
{
  echo "test mp"
  echo "test mp_sync"
  echo "seeds 0..39"
} > "$tmp/jobs.txt"
"$WEAKORD" batch "$tmp/jobs.txt" --workers 4 --timeout 5 \
  -o "$tmp/batch.jsonl" 2>/dev/null
if [ "$(wc -l < "$tmp/batch.jsonl")" -ne 42 ]; then
  fail "reference batch did not produce 42 records"
fi

# --- 1. two concurrent clients, overlapping work -----------------------------
"$WEAKORD" serve "$SOCK" --workers 4 --timeout 5 --retries 2 --backoff 50 \
  --cache "$tmp/verdicts.wovc" -o "$tmp/serve.jsonl" 2> "$tmp/serve.err" &
SRV=$!
await_sock || fail "daemon did not bind $SOCK"

# Client 1 owns 32 tickets, client 2 owns 21; ids interleave under
# concurrency, but after a client's own submissions at least that many
# tickets exist globally, so these RESULT WAIT targets are always valid
# (tickets are visible across connections by design).
{
  echo "SUBMIT test mp"
  echo "SUBMIT test mp_sync"
  echo "SUBMIT seeds 0..29"
  echo "RESULT 31 WAIT"
  echo "STATS"
} | "$WEAKORD" client "$SOCK" --timeout 30 > "$tmp/c1.out" 2> "$tmp/c1.err" &
C1=$!
{
  echo "SUBMIT seeds 20..39"
  echo "SUBMIT test mp"
  echo "RESULT 20 WAIT"
  echo "STATS"
} | "$WEAKORD" client "$SOCK" --timeout 30 > "$tmp/c2.out" 2> "$tmp/c2.err" &
C2=$!
wait "$C1" || fail "client 1 failed: $(cat "$tmp/c1.err")"
wait "$C2" || fail "client 2 failed: $(cat "$tmp/c2.err")"

# Let the daemon finish everything both clients queued, then drain it.
await_completed 53 || fail "daemon never completed all 53 tickets"
echo "DRAIN" | "$WEAKORD" client "$SOCK" --timeout 60 > "$tmp/cd.out" 2>&1
wait "$SRV"
code=$?
SRV=""
if [ "$code" -ne 0 ]; then
  fail "drained daemon with no pending work: expected exit 0, got $code"
fi

if [ "$(wc -l < "$tmp/serve.jsonl")" -ne 53 ]; then
  fail "expected 53 ticket records, got $(wc -l < "$tmp/serve.jsonl")"
fi
# The overlap (seeds 20..29 and mp) must hit the shared cache across
# clients: at least one record is served from cache, and STATS agrees.
if ! grep -q '"cached":true' "$tmp/serve.jsonl"; then
  fail "no cross-client cache hit in the daemon JSONL"
fi
if ! grep -q '"served_from_cache":' "$tmp/c1.out" "$tmp/c2.out"; then
  fail "STATS response lacks the served_from_cache counter"
fi
# Both clients' RESULT WAIT responses carry real verdict records.
if ! grep -q '"status":"ok"' "$tmp/c1.out"; then
  fail "client 1 never saw its verdict"
fi
if ! grep -q '"status":"ok"' "$tmp/c2.out"; then
  fail "client 2 never saw its verdict"
fi
# Every verdict from the direct batch run appears among the daemon's
# records once job ids and volatile fields are stripped (the daemon set
# is a superset: the overlap completed once per submitting client).
if comm -13 <(norm "$tmp/serve.jsonl" | uniq) <(norm "$tmp/batch.jsonl") \
  | grep -q .; then
  fail "daemon verdicts diverge from the direct batch run"
fi

# --- 2. protocol enforcement -------------------------------------------------
"$WEAKORD" serve "$SOCK" --cache "$tmp/verdicts.wovc" 2>> "$tmp/serve.err" &
SRV=$!
await_sock || fail "daemon did not rebind $SOCK"
echo "SUBMIT test mp" | "$WEAKORD" client "$SOCK" --no-hello \
  > "$tmp/nohello.out" 2>&1
if ! grep -q 'ERR 401' "$tmp/nohello.out"; then
  fail "SUBMIT before HELLO did not produce ERR 401"
fi
{
  echo "STATUS 99999"
  echo "NONSENSE"
} | "$WEAKORD" client "$SOCK" > "$tmp/err.out" 2>&1
if [ "$(grep -c 'ERR 404' "$tmp/err.out")" -ne 2 ]; then
  fail "unknown ticket / unknown verb did not both produce ERR 404"
fi
kill -TERM "$SRV" 2>/dev/null
wait "$SRV" 2>/dev/null
SRV=""
rm -f "$SOCK"

# --- 3. SIGTERM mid-stream: drain, checkpoint, resume ------------------------
# One worker against 100 queued jobs guarantees the SIGTERM lands with
# most of the queue still pending.
"$WEAKORD" serve "$SOCK" --workers 1 --timeout 5 --retries 2 --backoff 50 \
  --cache "$tmp/verdicts2.wovc" -o "$tmp/drain.jsonl" \
  --checkpoint "$tmp/daemon.ckpt" 2> "$tmp/drain.err" &
SRV=$!
await_sock || fail "slow daemon did not bind $SOCK"
echo "SUBMIT seeds 100..199" | "$WEAKORD" client "$SOCK" >/dev/null 2>&1
sleep 0.3
kill -TERM "$SRV" 2>/dev/null
wait "$SRV"
code=$?
SRV=""
if [ "$code" -ne 3 ]; then
  fail "SIGTERM mid-stream: expected exit 3 (suspended), got $code"
fi
if [ ! -s "$tmp/daemon.ckpt" ]; then
  fail "drained daemon left no checkpoint"
fi
if ! grep -q 'SUSPENDED' "$tmp/drain.err"; then
  fail "drained daemon summary does not say SUSPENDED"
fi
rm -f "$SOCK"
"$WEAKORD" serve "$SOCK" --workers 4 --timeout 5 --retries 2 --backoff 50 \
  --cache "$tmp/verdicts2.wovc" -o "$tmp/drain.jsonl" \
  --checkpoint "$tmp/daemon.ckpt" --resume "$tmp/daemon.ckpt" \
  2> "$tmp/resume.err" &
SRV=$!
await_sock || fail "resumed daemon did not bind $SOCK"
# Orphaned tickets finish without any client asking; drain once done.
await_completed 100 || true # completed counts this lifetime's finishes only
for _ in $(seq 1 300); do
  [ "$(wc -l < "$tmp/drain.jsonl")" -ge 100 ] && break
  sleep 0.1
done
echo "DRAIN" | "$WEAKORD" client "$SOCK" --timeout 60 >/dev/null 2>&1
wait "$SRV"
code=$?
SRV=""
if [ "$code" -ne 0 ]; then
  fail "resumed daemon: expected exit 0 after finishing orphans, got $code"
fi
if [ "$(wc -l < "$tmp/drain.jsonl")" -ne 100 ]; then
  fail "drain + resume lost tickets: $(wc -l < "$tmp/drain.jsonl")/100 records"
fi
# The interrupted-and-resumed corpus matches an uninterrupted batch run.
echo "seeds 100..199" > "$tmp/jobs2.txt"
"$WEAKORD" batch "$tmp/jobs2.txt" --workers 4 --timeout 5 \
  -o "$tmp/batch2.jsonl" 2>/dev/null
if ! diff <(norm "$tmp/drain.jsonl") <(norm "$tmp/batch2.jsonl"); then
  fail "drain + resume diverged from the uninterrupted batch run"
fi

# Keep the evidence (CI uploads this directory as an artifact).
if [ -n "${DAEMON_ARTIFACT_DIR:-}" ]; then
  mkdir -p "$DAEMON_ARTIFACT_DIR"
  cp "$tmp"/*.jsonl "$DAEMON_ARTIFACT_DIR/" 2>/dev/null
  cp "$tmp"/*.out "$tmp"/*.err "$DAEMON_ARTIFACT_DIR/" 2>/dev/null
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails daemon chaos check(s) failed" >&2
  exit 1
fi
echo "daemon chaos: ok"
