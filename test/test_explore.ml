(* Differential tests for the exploration engine: the parallel frontier
   sweep and the SC partial-order reduction must be invisible in the
   results — outcome sets identical to the sequential, unreduced
   baselines over the whole corpus, and fuel-bounded runs always sound
   subsets whatever the domain count. *)

let check = Alcotest.(check bool)

let corpus = List.map (fun e -> e.Litmus_classics.prog) Litmus_classics.all

(* The machines whose state graphs the engine walks; [sc] enumerates
   interleavings instead and ignores the knob. *)
let engine_machines =
  List.filter (fun m -> not (String.equal (Machines.name m) "sc")) Machines.all

let domain_counts =
  let base = [ 2; 4 ] in
  match Sys.getenv_opt "WEAKORD_TEST_JOBS" with
  | None -> base
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 && not (List.mem n base) -> base @ [ n ]
      | _ -> base)

let set_eq = Final.Set.equal

(* --- parallel sweep == sequential sweep ------------------------------------ *)

let test_parallel_matches_sequential () =
  List.iter
    (fun prog ->
      List.iter
        (fun m ->
          let seq = Machines.explore ~domains:1 m prog in
          let seq_set = Explore.bounded_value seq.Explore.result in
          check
            (Printf.sprintf "%s/%s sequential complete" (Prog.name prog)
               (Machines.name m))
            true
            (Explore.is_complete seq.Explore.result);
          List.iter
            (fun domains ->
              (* [~adaptive:false]: on a small host the adaptive fallback
                 would quietly run these sequentially; the point here is
                 the genuinely parallel engine. *)
              let par = Machines.explore ~domains ~adaptive:false m prog in
              check
                (Printf.sprintf "%s/%s complete at %d domains"
                   (Prog.name prog) (Machines.name m) domains)
                true
                (Explore.is_complete par.Explore.result);
              check
                (Printf.sprintf "%s/%s outcomes equal at %d domains"
                   (Prog.name prog) (Machines.name m) domains)
                true
                (set_eq seq_set
                   (Explore.bounded_value par.Explore.result));
              (* Each state is claimed exactly once, so a complete sweep
                 expands the same number of states however many domains
                 raced for them. *)
              Alcotest.(check int)
                (Printf.sprintf "%s/%s states_expanded at %d domains"
                   (Prog.name prog) (Machines.name m) domains)
                seq.Explore.stats.Explore.states_expanded
                par.Explore.stats.Explore.states_expanded)
            domain_counts)
        engine_machines)
    corpus

(* --- fuel stays sound under parallelism ------------------------------------ *)

let test_fuel_sound_across_domains () =
  let progs =
    List.filter
      (fun p ->
        List.mem (Prog.name p) [ "dekker"; "iriw"; "mp"; "lock_mutex" ])
      corpus
  in
  List.iter
    (fun prog ->
      List.iter
        (fun m ->
          let full =
            Explore.bounded_value
              (Machines.explore ~domains:1 m prog).Explore.result
          in
          List.iter
            (fun fuel ->
              List.iter
                (fun domains ->
                  let r = Machines.explore ~domains ~fuel m prog in
                  match r.Explore.result with
                  | Explore.Complete s ->
                      check
                        (Printf.sprintf
                           "%s/%s complete@fuel %d, %d domains = full"
                           (Prog.name prog) (Machines.name m) fuel domains)
                        true (set_eq s full)
                  | Explore.Partial s ->
                      check
                        (Printf.sprintf
                           "%s/%s partial@fuel %d, %d domains subset"
                           (Prog.name prog) (Machines.name m) fuel domains)
                        true
                        (Final.Set.subset s full))
                (1 :: domain_counts))
            [ 0; 1; 7; 50; 100_000 ])
        [ Machines.wbuf; Machines.def2 ])
    progs

(* --- partial-order reduction ------------------------------------------------ *)

let gen_progs =
  (* Deterministic random programs; the generator's defaults include sync
     accesses, RMWs and awaits, so the never-commute cases are covered. *)
  List.filter_map
    (fun seed -> Litmus_gen.generate_live ~max_attempts:20 seed)
    (List.init 40 Fun.id)

let test_por_outcomes_identical () =
  List.iter
    (fun prog ->
      let full, full_states = Sc.explore ~reduce:false prog in
      let red, red_states = Sc.explore ~reduce:true prog in
      check
        (Printf.sprintf "%s: reduced SC outcomes identical" (Prog.name prog))
        true (set_eq full red);
      check
        (Printf.sprintf "%s: reduction never visits more states"
           (Prog.name prog))
        true
        (red_states <= full_states))
    (corpus @ gen_progs)

let test_por_traces_cover_outcomes () =
  (* A reduced trace enumeration visits one representative per commutation
     class — fewer traces, same final states. *)
  List.iter
    (fun prog ->
      let finals_of reduce =
        let acc = ref Final.Set.empty in
        Sc.iter_traces ~reduce prog (fun _ f -> acc := Final.Set.add f !acc);
        !acc
      in
      check
        (Printf.sprintf "%s: reduced traces reach the same finals"
           (Prog.name prog))
        true
        (set_eq (finals_of false) (finals_of true));
      check
        (Printf.sprintf "%s: no more reduced traces than full"
           (Prog.name prog))
        true
        (Sc.count_traces ~reduce:true prog
        <= Sc.count_traces ~reduce:false prog))
    corpus

(* --- machine-level partial-order reduction ---------------------------------- *)

(* corpus x machines x {por, no-por} x {seq, par}: the oracle must be
   invisible in the outcome sets and never expand more states than the
   full sweep.  [~por_min_instrs:0] forces the oracle machinery on even
   for litmus-sized programs (the production default skips them);
   [~adaptive:false] forces the genuinely parallel engine (ample-only —
   sleep sets are schedule-dependent) instead of the single-core
   fallback. *)
let test_machine_por_differential () =
  List.iter
    (fun prog ->
      List.iter
        (fun m ->
          let base = Machines.explore ~domains:1 ~reduce:false m prog in
          let base_set = Explore.bounded_value base.Explore.result in
          let base_states = base.Explore.stats.Explore.states_expanded in
          List.iter
            (fun (label, domains, adaptive) ->
              let r =
                Machines.explore ~domains ~adaptive ~reduce:true
                  ~por_min_instrs:0 m prog
              in
              check
                (Printf.sprintf "%s/%s %s reduced complete" (Prog.name prog)
                   (Machines.name m) label)
                true
                (Explore.is_complete r.Explore.result);
              check
                (Printf.sprintf "%s/%s %s reduced outcomes identical"
                   (Prog.name prog) (Machines.name m) label)
                true
                (set_eq base_set (Explore.bounded_value r.Explore.result));
              check
                (Printf.sprintf "%s/%s %s reduced expands no more states"
                   (Prog.name prog) (Machines.name m) label)
                true
                (r.Explore.stats.Explore.states_expanded <= base_states))
            [ ("seq", 1, true); ("par2", 2, false); ("par4", 4, false) ])
        engine_machines)
    (corpus @ gen_progs)

(* The tentpole's quantitative claim, pinned: on the bench harness's
   big3 workload (12 instructions — above the production threshold, so
   plain defaults engage the oracle) wbuf, ooo and def2 all shed at
   least 30% of their states with identical outcome sets. *)
let big3 =
  Litmus_parse.parse_string
    "name big3\n\
     { x=0; y=0; z=0 }\n\
     P0          | P1          | P2          ;\n\
     W x 1       | W y 1       | W z 1       ;\n\
     r0 := R y   | r3 := R z   | r6 := R x   ;\n\
     W x 2       | W y 2       | W z 2       ;\n\
     r1 := R z   | r4 := R x   | r7 := R y   ;\n\
     exists (0:r0=0)\n"

let test_big3_reduction_ratio () =
  List.iter
    (fun m ->
      let un = Machines.explore ~reduce:false m big3 in
      let red = Machines.explore m big3 in
      let un_states = un.Explore.stats.Explore.states_expanded in
      let red_states = red.Explore.stats.Explore.states_expanded in
      check
        (Printf.sprintf "big3/%s reduction engaged" (Machines.name m))
        true red.Explore.stats.Explore.por_enabled;
      check
        (Printf.sprintf "big3/%s outcomes identical" (Machines.name m))
        true
        (set_eq
           (Explore.bounded_value un.Explore.result)
           (Explore.bounded_value red.Explore.result));
      check
        (Printf.sprintf "big3/%s >=30%% fewer states (%d vs %d)"
           (Machines.name m) red_states un_states)
        true
        (float_of_int red_states <= 0.7 *. float_of_int un_states))
    [ Machines.wbuf; Machines.ooo; Machines.def2 ]

(* --- the knobs compose ------------------------------------------------------ *)

let test_verify_jobs_agree () =
  (* Definition 2 verdicts cannot depend on the domain count. *)
  let model = Weak_ordering.drf0 in
  List.iter
    (fun m ->
      let report domains =
        Weak_ordering.verify
          ~hw:(Weak_ordering.of_machine ~domains m)
          ~model corpus
      in
      let r1 = report 1 and r4 = report 4 in
      Alcotest.(check (list bool))
        (Printf.sprintf "%s: verdicts independent of domains"
           (Machines.name m))
        (List.map (fun v -> v.Weak_ordering.ok) r1.Weak_ordering.verdicts)
        (List.map (fun v -> v.Weak_ordering.ok) r4.Weak_ordering.verdicts))
    [ Machines.wbuf; Machines.def2; Machines.rc ]

let suite =
  ( "explore",
    [
      Alcotest.test_case "parallel sweep matches sequential" `Quick
        test_parallel_matches_sequential;
      Alcotest.test_case "fuel sound across domain counts" `Quick
        test_fuel_sound_across_domains;
      Alcotest.test_case "POR outcomes identical" `Quick
        test_por_outcomes_identical;
      Alcotest.test_case "POR traces cover outcomes" `Quick
        test_por_traces_cover_outcomes;
      Alcotest.test_case "machine POR differential sweep" `Quick
        test_machine_por_differential;
      Alcotest.test_case "big3 reduction ratio" `Quick
        test_big3_reduction_ratio;
      Alcotest.test_case "verify independent of --jobs" `Quick
        test_verify_jobs_agree;
    ] )
