#!/usr/bin/env bash
# Pin the weakord exit-code contract:
#   0  success
#   1  the check ran and failed (data race, verification counterexample,
#      fault-campaign failure)
#   2  parse failure or unreadable input (including an unusable checkpoint)
#   3  a budget suspended the run cleanly; the checkpoint (if configured)
#      holds the resume point
#   4  a batch completed but quarantined at least one poison job
set -u

WEAKORD="$1"
LITMUS_DIR="$2"
fails=0

expect() { # expect CODE DESCRIPTION CMD...
  local want="$1" desc="$2"
  shift 2
  "$@" >/dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $desc: expected exit $want, got $got" >&2
    fails=$((fails + 1))
  fi
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# success paths
expect 0 "run on a shipped file" "$WEAKORD" run "$LITMUS_DIR/mp_sync.litmus"
expect 0 "races on a race-free program" "$WEAKORD" races mp_sync
expect 0 "verify def2 against drf0" "$WEAKORD" verify -m def2 --model drf0
expect 0 "verify without partial-order reduction" \
  "$WEAKORD" verify --no-por -m def2 --model drf0
expect 0 "run without partial-order reduction" \
  "$WEAKORD" run --no-por "$LITMUS_DIR/mp_sync.litmus"
expect 0 "run with reduction telemetry" \
  "$WEAKORD" run --por-stats "$LITMUS_DIR/mp_sync.litmus"
expect 0 "run with explicit --jobs" \
  "$WEAKORD" run --jobs 2 "$LITMUS_DIR/mp_sync.litmus"
expect 0 "run with --jobs auto" \
  "$WEAKORD" run --jobs auto "$LITMUS_DIR/mp_sync.litmus"
expect 0 "fault campaign that passes" \
  "$WEAKORD" faults --seeds 1 -s delay mp_sync

# --no-por affects both enumerations, never the results: the full run
# report (SC sets and machine outcome sets) must be byte-identical with
# the reduction on and off, on either side of the oracle size threshold.
"$WEAKORD" run "$LITMUS_DIR/mp_sync.litmus" > "$tmp/por.out" 2>/dev/null
"$WEAKORD" run --no-por "$LITMUS_DIR/mp_sync.litmus" > "$tmp/nopor.out" 2>/dev/null
if ! cmp -s "$tmp/por.out" "$tmp/nopor.out"; then
  echo "FAIL: --no-por changed the run report" >&2
  fails=$((fails + 1))
fi
if ! "$WEAKORD" run --por-stats dekker 2>/dev/null | grep -q 'por: '; then
  echo "FAIL: --por-stats printed no reduction telemetry" >&2
  fails=$((fails + 1))
fi
# the bad --jobs values are usage errors (cmdliner's exit 124)
expect 124 "rejects --jobs 0" "$WEAKORD" run --jobs 0 dekker
expect 124 "rejects garbage --jobs" "$WEAKORD" run --jobs tortoise dekker
expect 0 "trace to stdout summary" "$WEAKORD" trace dekker -m def2
expect 0 "trace to a file" \
  "$WEAKORD" trace dekker -m def2 --normalize -o "$tmp/dekker.json"
expect 0 "sim with a trace summary" \
  "$WEAKORD" sim -w fig3 -p def1 --trace-summary

if [ ! -s "$tmp/dekker.json" ]; then
  echo "FAIL: trace -o did not write a nonempty file" >&2
  fails=$((fails + 1))
elif ! grep -q '"traceEvents"' "$tmp/dekker.json"; then
  echo "FAIL: trace output is not a Chrome trace document" >&2
  fails=$((fails + 1))
fi

# the check ran and failed: exit 1
expect 1 "races on a racy program" "$WEAKORD" races dekker
expect 1 "verify with a counterexample" "$WEAKORD" verify -m wbuf --model all

# parse failures: exit 2, with a located file:line:col report
printf 'P0 | P1 ;\nW @ 1 | ;\n' > "$tmp/bad.litmus"
expect 2 "garbled file" "$WEAKORD" run "$tmp/bad.litmus"
expect 2 "garbled stdin" sh -c "\"$WEAKORD\" run - < \"$tmp/bad.litmus\""
expect 2 "missing file" "$WEAKORD" run "$tmp/does_not_exist.litmus"

if ! "$WEAKORD" run "$tmp/bad.litmus" 2>&1 \
  | grep -q 'bad\.litmus:2:3: parse error'; then
  echo "FAIL: parse error report is not located (want bad.litmus:2:3)" >&2
  fails=$((fails + 1))
fi

# budget suspension: exit 3, with a resumable checkpoint
expect 3 "verify suspends on an expired deadline" \
  "$WEAKORD" verify -m def2 --model drf0 --deadline 0 --checkpoint "$tmp/v.ckpt"
if [ ! -s "$tmp/v.ckpt" ]; then
  echo "FAIL: suspended verify left no checkpoint" >&2
  fails=$((fails + 1))
fi
expect 3 "suspension without a checkpoint still exits 3" \
  "$WEAKORD" verify -m def2 --model drf0 --deadline 0

# resuming the suspended run (without the budget) finishes with exit 0 and
# the same verdicts as an uninterrupted run
"$WEAKORD" verify -m def2 --model drf0 > "$tmp/uninterrupted.out" 2>/dev/null
expect 0 "resume completes the suspended verify" \
  sh -c "\"$WEAKORD\" verify -m def2 --model drf0 --resume \"$tmp/v.ckpt\" > \"$tmp/resumed.out\" 2>/dev/null"
if ! cmp -s "$tmp/uninterrupted.out" "$tmp/resumed.out"; then
  echo "FAIL: resumed verify verdicts differ from the uninterrupted run" >&2
  fails=$((fails + 1))
fi

# an unusable checkpoint is exit 2, loudly — and with the .prev last-good
# generation intact, corruption of the primary recovers instead
"$WEAKORD" verify -m def2 --model drf0 --deadline 0 --checkpoint "$tmp/r.ckpt" >/dev/null 2>&1
"$WEAKORD" verify -m def2 --model drf0 --deadline 0.5 \
  --checkpoint "$tmp/r.ckpt" --resume "$tmp/r.ckpt" >/dev/null 2>&1
if [ -f "$tmp/r.ckpt.prev" ]; then
  printf 'smashed' > "$tmp/r.ckpt"
  expect 0 "corrupt primary falls back to .prev" \
    "$WEAKORD" verify -m def2 --model drf0 --resume "$tmp/r.ckpt"
fi
printf 'smashed' > "$tmp/r.ckpt"
rm -f "$tmp/r.ckpt.prev"
expect 2 "corrupt checkpoint without .prev is rejected" \
  "$WEAKORD" verify -m def2 --model drf0 --resume "$tmp/r.ckpt"
expect 2 "checkpoint resumed under the wrong machine" \
  sh -c "\"$WEAKORD\" verify -m def2 --model drf0 --deadline 0 --checkpoint \"$tmp/m.ckpt\" >/dev/null 2>&1; \
         \"$WEAKORD\" verify -m wbuf --model drf0 --resume \"$tmp/m.ckpt\""

# fault campaigns: suspension is exit 3 and a resumed campaign replays the
# identical deterministic fault schedule
expect 3 "faults suspends on an expired deadline" \
  "$WEAKORD" faults --seeds 2 -s delay --deadline 0 --checkpoint "$tmp/f.ckpt" mp_sync
"$WEAKORD" faults --seeds 2 -s delay mp_sync > "$tmp/f_full.out" 2>/dev/null
expect 0 "resumed fault campaign completes" \
  sh -c "\"$WEAKORD\" faults --seeds 2 -s delay --resume \"$tmp/f.ckpt\" mp_sync > \"$tmp/f_resumed.out\" 2>/dev/null"
if ! cmp -s "$tmp/f_full.out" "$tmp/f_resumed.out"; then
  echo "FAIL: resumed fault campaign diverged from the uninterrupted schedule" >&2
  fails=$((fails + 1))
fi
expect 2 "fault checkpoint with a different grid is rejected" \
  "$WEAKORD" faults --seeds 3 -s delay --resume "$tmp/f.ckpt" mp_sync

# gen: deterministic seed -> program mapping, usable as run/batch input
expect 0 "gen emits a program" "$WEAKORD" gen 42
"$WEAKORD" gen 42 > "$tmp/g1.litmus" 2>/dev/null
"$WEAKORD" gen 42 > "$tmp/g2.litmus" 2>/dev/null
if ! cmp -s "$tmp/g1.litmus" "$tmp/g2.litmus"; then
  echo "FAIL: gen is not deterministic for the same seed" >&2
  fails=$((fails + 1))
fi
"$WEAKORD" gen 42 --no-await --no-rmw > "$tmp/g3.litmus" 2>/dev/null
if cmp -s "$tmp/g1.litmus" "$tmp/g3.litmus"; then
  echo "FAIL: gen config flags changed nothing for seed 42" >&2
  fails=$((fails + 1))
fi
expect 0 "gen output parses back in" \
  sh -c "\"$WEAKORD\" gen 42 | \"$WEAKORD\" run -"
expect 0 "gen to a file" "$WEAKORD" gen 7 -o "$tmp/g7.litmus"
expect 124 "gen without a seed is a usage error" "$WEAKORD" gen

# batch: the supervised service's exit-code contract
printf 'machine def2\ntest mp\ntest mp_sync\nseeds 0..3\n' > "$tmp/ok.jobs"
expect 0 "clean batch" \
  "$WEAKORD" batch "$tmp/ok.jobs" --workers 2 --timeout 5
printf 'test dekker machine=wbuf\n' > "$tmp/viol.jobs"
expect 1 "batch that finds a violation" \
  "$WEAKORD" batch "$tmp/viol.jobs" --model all --timeout 5
printf 'frobnicate 3\n' > "$tmp/bad.jobs"
expect 2 "unparseable job file" "$WEAKORD" batch "$tmp/bad.jobs"
printf 'test mp machine=warpdrive\n' > "$tmp/badm.jobs"
expect 2 "job file naming an unknown machine" "$WEAKORD" batch "$tmp/badm.jobs"
expect 2 "missing job file" "$WEAKORD" batch "$tmp/no_such.jobs"
expect 2 "batch with an unknown model" \
  "$WEAKORD" batch "$tmp/ok.jobs" --model sc9000
expect 3 "batch suspended by its deadline" \
  "$WEAKORD" batch "$tmp/ok.jobs" --deadline 0 --checkpoint "$tmp/b.ckpt"
printf 'wedge\n' > "$tmp/poison.jobs"
expect 4 "batch that quarantines a poison job" \
  "$WEAKORD" batch "$tmp/poison.jobs" --timeout 0.3 --retries 1 --backoff 10
printf 'smashed' > "$tmp/b2.ckpt"
expect 2 "batch with an unusable resume checkpoint" \
  "$WEAKORD" batch "$tmp/ok.jobs" --resume "$tmp/b2.ckpt"

# the batch/serve --help must document the JSONL telemetry fields the
# records actually carry, and -v must explain the dedup counters
for sub in batch serve; do
  if ! "$WEAKORD" "$sub" --help=plain 2>/dev/null \
    | grep -q 'spilled_runs'; then
    echo "FAIL: $sub --help does not document the spilled_runs field" >&2
    fails=$((fails + 1))
  fi
  if ! "$WEAKORD" "$sub" --help=plain 2>/dev/null | grep -q 'degraded'; then
    echo "FAIL: $sub --help does not document the degraded field" >&2
    fails=$((fails + 1))
  fi
done
if ! "$WEAKORD" batch --help=plain 2>/dev/null | grep -q 'sym_dedup'; then
  echo "FAIL: batch --help does not explain the sym_dedup counter" >&2
  fails=$((fails + 1))
fi
if ! "$WEAKORD" gen --help=plain 2>/dev/null | grep -q 'JSONL'; then
  echo "FAIL: gen --help does not mention the JSONL repro contract" >&2
  fails=$((fails + 1))
fi

# serve: startup misconfiguration is exit 2 before any job runs
expect 2 "serve with an unknown model" \
  "$WEAKORD" serve "$tmp/s.sock" --model sc9000
expect 2 "serve with an unknown machine" \
  "$WEAKORD" serve "$tmp/s.sock" -m warpdrive
expect 2 "serve with an unusable resume checkpoint" \
  sh -c "printf smashed > \"$tmp/s.ckpt\"; \
         \"$WEAKORD\" serve \"$tmp/s.sock\" --resume \"$tmp/s.ckpt\""

# client: connecting to nothing is exit 2
expect 2 "client against a dead socket" \
  "$WEAKORD" client "$tmp/no_such.sock"

# fuzz: seed-range validation is exit 2; a clean range exits 0; the
# deadline suspends with exit 3
expect 2 "fuzz without a range" "$WEAKORD" fuzz
expect 2 "fuzz with a backwards range" "$WEAKORD" fuzz --seeds 9..3
expect 2 "fuzz with both --seeds and --count" \
  "$WEAKORD" fuzz --seeds 0..3 --count 4
expect 0 "fuzz over a clean seed range" \
  "$WEAKORD" fuzz --seeds 0..3 --no-sim
expect 3 "fuzz suspended by its deadline" \
  "$WEAKORD" fuzz --count 500 --deadline 0

# gen --profile: each named profile is a distinct deterministic mapping
expect 0 "gen with a named profile" "$WEAKORD" gen 42 --profile wide
expect 124 "gen with an unknown profile is a usage error" \
  "$WEAKORD" gen 42 --profile sideways
"$WEAKORD" gen 42 --profile wide > "$tmp/p1.litmus" 2>/dev/null
"$WEAKORD" gen 42 --profile wide > "$tmp/p2.litmus" 2>/dev/null
if ! cmp -s "$tmp/p1.litmus" "$tmp/p2.litmus"; then
  echo "FAIL: gen --profile wide is not deterministic for the same seed" >&2
  fails=$((fails + 1))
fi
if cmp -s "$tmp/g1.litmus" "$tmp/p1.litmus"; then
  echo "FAIL: gen --profile wide matched the default mapping for seed 42" >&2
  fails=$((fails + 1))
fi

# fleet: range/flag validation is exit 2; a clean range exits 0; the
# deadline drains with exit 3; a wedge seed quarantines with exit 4
expect 2 "fleet without a range" "$WEAKORD" fleet
expect 2 "fleet with a backwards range" "$WEAKORD" fleet --seeds 9..3
expect 2 "fleet with zero shards" "$WEAKORD" fleet --count 10 --shards 0
expect 2 "fleet with an unusable resume checkpoint" \
  sh -c "printf smashed > \"$tmp/fl.ckpt\"; \
         \"$WEAKORD\" fleet --count 10 --resume \"$tmp/fl.ckpt\""
expect 0 "fleet over a clean seed range" \
  "$WEAKORD" fleet --count 20 --unit 5 --shards 2 --no-sim
expect 3 "fleet drained by its deadline" \
  "$WEAKORD" fleet --count 5000 --deadline 0 --checkpoint "$tmp/fd.ckpt"
expect 4 "fleet that quarantines a wedge seed" \
  "$WEAKORD" fleet --count 8 --unit 4 --shards 2 --wedge-seed 3 \
  --hang-timeout 0.5 --retries 1 --backoff 10

if [ "$fails" -ne 0 ]; then
  echo "$fails exit-code check(s) failed" >&2
  exit 1
fi
echo "cli exit codes: ok"
