(* Tests for the litmus text format: lexer, parser, printer, round trips. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Lexer --------------------------------------------------------------- *)

let test_lexer_basic () =
  let open Litmus_lex in
  let toks = tokenize (strip_comment "r0 := R x ; # stripped first") in
  check "tokens" true
    (match toks with
    | IDENT "r0" :: ASSIGN :: IDENT "R" :: IDENT "x" :: SEMI :: _ -> true
    | _ -> false)

let test_lexer_negative () =
  let open Litmus_lex in
  check "negative literal" true (tokenize "-5" = [ INT (-5) ]);
  check "minus operator" true (tokenize "a - 5" = [ IDENT "a"; MINUS; INT 5 ])

let test_lexer_connectives () =
  let open Litmus_lex in
  check "and/or" true (tokenize "/\\ \\/ ~" = [ AND; OR; NOT ])

let test_lexer_error () =
  check "bad char raises" true
    (try
       ignore (Litmus_lex.tokenize "a @ b");
       false
     with Litmus_lex.Lex_error _ -> true)

let test_strip_comment () =
  Alcotest.(check string)
    "comment stripped" "W x 1 "
    (Litmus_lex.strip_comment "W x 1 # write x")

(* --- Cell parsing -------------------------------------------------------- *)

let cell s = Option.get (Litmus_parse.parse_cell s)

let test_parse_cells () =
  let open Instr in
  check "data write" true (equal (cell "W x 1") (write "x" 1));
  check "sync write" true (equal (cell "Ws s 0") (unlock "s"));
  check "data read" true (equal (cell "r := R x") (read "x" "r"));
  check "sync read" true (equal (cell "r := Rs s") (sync_read "s" "r"));
  check "tas" true (equal (cell "r := TAS l") (test_and_set "l" "r"));
  check "fadd" true (equal (cell "r := FADD c 1") (fetch_and_add "c" "r" 1));
  check "await" true (equal (cell "Await f 1") (await "f" 1));
  check "await with reg" true
    (equal (cell "r := Await f 1") (await ~reg:"r" "f" 1));
  check "data await" true (equal (cell "Awaitd f 1") (await ~kind:Data "f" 1));
  check "lock" true (equal (cell "Lock l") (lock "l"));
  check "unlock" true (equal (cell "Unlock l") (unlock "l"));
  check "fence" true (equal (cell "Fence") Fence);
  check "write of expression" true
    (equal (cell "W y (r + 1)") (store "y" (Exp.Add (Exp.Reg "r", Exp.Const 1))));
  check "empty cell" true (Litmus_parse.parse_cell "   " = None)

let test_parse_cell_errors () =
  let bad s =
    try
      ignore (Litmus_parse.parse_cell s);
      false
    with Litmus_parse.Parse_error _ -> true
  in
  check "unknown op" true (bad "Q x 1");
  check "trailing junk" true (bad "W x 1 2");
  check "missing operand" true (bad "r := R")

(* --- Conditions ---------------------------------------------------------- *)

let test_parse_condition () =
  let c = Litmus_parse.parse_condition "0:r0=0 /\\ P1:r1=0 \\/ ~(x=1)" in
  (* Or binds weaker than and. *)
  check "structure" true
    (match c with
    | Cond.Or (Cond.And (Cond.Reg_eq (0, "r0", 0), Cond.Reg_eq (1, "r1", 0)), Cond.Not (Cond.Mem_eq ("x", 1))) -> true
    | _ -> false)

(* --- Whole files --------------------------------------------------------- *)

let sb_text =
  {|
name SB
{ x=0; y=0 }
P0          | P1          ;
W x 1       | W y 1       ;
r0 := R y   | r1 := R x   ;
exists (0:r0=0 /\ 1:r1=0)
|}

let test_parse_file_structure () =
  let p = Litmus_parse.parse_string sb_text in
  Alcotest.(check string) "name" "SB" (Prog.name p);
  check_int "threads" 2 (Prog.num_threads p);
  check_int "instrs" 4 (Prog.num_instrs p);
  check "init" true (Prog.init p = [ ("x", 0); ("y", 0) ]);
  check "exists parsed" true (Prog.exists p <> None)

let test_parsed_equals_classic () =
  let p = Litmus_parse.parse_string sb_text in
  let q = Litmus_classics.dekker.Litmus_classics.prog in
  (* Same instruction lists (names differ). *)
  check "threads equal" true
    (List.for_all2 (List.for_all2 Instr.equal) (Prog.threads p) (Prog.threads q))

let test_ragged_rows () =
  let text = "P0 | P1 ;\nW x 1 | ;\nW y 1 | r := R x ;\n" in
  let p = Litmus_parse.parse_string text in
  check_int "P0 has 2" 2 (List.length (Prog.thread p 0));
  check_int "P1 has 1" 1 (List.length (Prog.thread p 1))

let test_comments_and_blanks () =
  let text = "# header comment\nname T\n\nP0 ;\nW x 1 ; # store\n" in
  let p = Litmus_parse.parse_string text in
  check_int "one instr" 1 (Prog.num_instrs p)

let test_parse_errors () =
  let bad text =
    try
      ignore (Litmus_parse.parse_string text);
      false
    with Litmus_parse.Parse_error _ -> true
  in
  check "missing header" true (bad "W x 1 ;\n");
  check "too many cells" true (bad "P0 ;\nW x 1 | W y 1 ;\n")

(* --- Round trips --------------------------------------------------------- *)

let test_roundtrip_classics () =
  List.iter
    (fun e ->
      let p = e.Litmus_classics.prog in
      let p' = Litmus_parse.parse_string (Litmus_print.to_string p) in
      check
        (Printf.sprintf "roundtrip %s threads" (Prog.name p))
        true
        (List.for_all2 (List.for_all2 Instr.equal) (Prog.threads p)
           (Prog.threads p'));
      check
        (Printf.sprintf "roundtrip %s init" (Prog.name p))
        true
        (Prog.init p = Prog.init p');
      (* Conditions round-trip up to printing: compare evaluation on all SC
         outcomes rather than syntax. *)
      match (Prog.exists p, Prog.exists p') with
      | None, None -> ()
      | Some c, Some c' ->
          let outcomes = Sc.outcomes p in
          Final.Set.iter
            (fun f ->
              check
                (Printf.sprintf "roundtrip %s cond" (Prog.name p))
                true
                (Cond.eval f c = Cond.eval f c'))
            outcomes
      | _, _ -> Alcotest.fail "condition lost in round trip")
    Litmus_classics.all

let test_classics_validate () =
  List.iter
    (fun e ->
      let p = e.Litmus_classics.prog in
      match Prog.validate p with
      | Ok () -> ()
      | Error errs ->
          Alcotest.failf "%s: %a" (Prog.name p)
            Fmt.(list ~sep:comma Prog.pp_error)
            errs)
    Litmus_classics.all

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "litmus",
    [
      t "lexer basics" test_lexer_basic;
      t "lexer negative numbers" test_lexer_negative;
      t "lexer connectives" test_lexer_connectives;
      t "lexer error" test_lexer_error;
      t "comment stripping" test_strip_comment;
      t "cell parsing" test_parse_cells;
      t "cell parse errors" test_parse_cell_errors;
      t "condition parsing" test_parse_condition;
      t "file structure" test_parse_file_structure;
      t "parsed SB = classic dekker" test_parsed_equals_classic;
      t "ragged rows" test_ragged_rows;
      t "comments and blanks" test_comments_and_blanks;
      t "parse errors" test_parse_errors;
      t "classics round-trip" test_roundtrip_classics;
      t "classics validate" test_classics_validate;
    ] )

(* --- files on disk --------------------------------------------------------- *)

let litmus_dir =
  (* dune runs the suite from test/; direct invocations may start at the
     repository root. *)
  List.find Sys.file_exists [ "../examples/litmus"; "examples/litmus" ]

let test_parse_shipped_files () =
  let files = Sys.readdir litmus_dir in
  Array.sort compare files;
  let parsed =
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".litmus")
    |> List.map (fun f -> Litmus_parse.parse_file (Filename.concat litmus_dir f))
  in
  check_int "four shipped tests" 4 (List.length parsed);
  List.iter
    (fun p ->
      match Prog.validate p with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "%s: %a" (Prog.name p)
            Fmt.(list ~sep:comma Prog.pp_error)
            es)
    parsed

let test_shipped_files_verdicts () =
  let by name =
    let path = Filename.concat litmus_dir (name ^ ".litmus") in
    Litmus_parse.parse_file path
  in
  check "sb racy" false (Drf.obeys (by "sb"));
  check "mp_sync clean" true (Drf.obeys (by "mp_sync"));
  check "handoff clean" true (Drf.obeys (by "handoff"));
  check "chain clean" true (Drf.obeys (by "chain"));
  check "sb exists allowed weakly" true
    (Option.get (Machines.allows_exists Machines.wbuf (by "sb")));
  check "chain exists forbidden on def2" false
    (Option.get (Machines.allows_exists Machines.def2 (by "chain")))

let file_suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "litmus-files",
    [
      t "shipped files parse and validate" test_parse_shipped_files;
      t "shipped files verdicts" test_shipped_files_verdicts;
    ] )

(* --- parser robustness ----------------------------------------------------- *)

(* Malformed input must produce a located [Parse_error] — never a lexer
   exception, [Failure], or anything else — and the location must point at
   the offending token. *)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let error_of text =
  match Litmus_parse.parse_string text with
  | _ -> Alcotest.failf "expected a parse error on %S" text
  | exception Litmus_parse.Parse_error { line; col; msg } -> (line, col, msg)

let test_error_positions () =
  let line, col, _ = error_of "P0 | P1 ;\nW x 1 | W @ 1 ;\n" in
  check_int "bad char line" 2 line;
  check_int "bad char col" 11 col;
  let line, col, _ = error_of "P0 | P1 ;\nW x 1 | W y 1 ;\nr0 := Q x | ;\n" in
  check_int "bad instr line" 3 line;
  check_int "bad instr col" 1 col;
  (* reported at end of input, where the header was expected *)
  let line, _, msg = error_of "name t\n{ x=0 }" in
  check_int "missing header line" 2 line;
  check "missing header named" true (contains ~affix:"header" msg);
  (* a blank line and a comment line do not shift the numbering *)
  let line, col, _ = error_of "name t\n\n# comment\nP0 ;\nW x foo := ;\n" in
  check_int "line survives blank and comment lines" 5 line;
  check_int "col of the offending token region" 1 col

let test_error_hints () =
  (* the message says what was found and what was expected instead *)
  let _, _, msg = error_of "P0 ;\nW x ;\n" in
  check "truncated write hint" true
    (contains ~affix:"expected expression" msg);
  let _, _, msg = error_of "P0 ;\nW x 1 ;\nexists (0:r0=\n" in
  check "truncated condition hint" true (contains ~affix:"expected integer" msg);
  let _, _, msg = error_of "P0 ;\nr0 := R x 1 ;\n" in
  check "trailing token hint" true (contains ~affix:"trailing" msg);
  let _, _, msg = error_of "P0 ;\nW x 99999999999999999999999 ;\n" in
  check "overflow literal hint" true (contains ~affix:"does not fit" msg)

(* Every truncation and every single-character corruption of the shipped
   files either parses or fails with a located Parse_error; nothing else
   escapes. *)

let shipped_texts () =
  Sys.readdir litmus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".litmus")
  |> List.sort compare
  |> List.map (fun f ->
         let ic = open_in (Filename.concat litmus_dir f) in
         let text = really_input_string ic (in_channel_length ic) in
         close_in ic;
         (f, text))

let parses_or_located_error file text =
  match Litmus_parse.parse_string text with
  | (_ : Prog.t) -> ()
  | exception Litmus_parse.Parse_error { line; col; _ } ->
      if line < 1 || col < 1 then
        Alcotest.failf "%s: error not located (line %d, col %d)" file line col
  | exception e ->
      Alcotest.failf "%s: escaped exception %s" file (Printexc.to_string e)

let test_truncated_files () =
  List.iter
    (fun (f, text) ->
      let n = String.length text in
      let k = ref 0 in
      while !k <= n do
        parses_or_located_error f (String.sub text 0 !k);
        k := !k + 3
      done)
    (shipped_texts ())

let test_garbled_files () =
  List.iter
    (fun (f, text) ->
      let n = String.length text in
      List.iter
        (fun c ->
          let p = ref 0 in
          while !p < n do
            let garbled = Bytes.of_string text in
            Bytes.set garbled !p c;
            parses_or_located_error f (Bytes.to_string garbled);
            p := !p + 7
          done)
        [ '@'; '|'; '{'; '('; ';'; '0'; '\n' ])
    (shipped_texts ())

let robustness_suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "litmus-parse-robustness",
    [
      t "error positions" test_error_positions;
      t "error hints" test_error_hints;
      t "truncated files" test_truncated_files;
      t "garbled files" test_garbled_files;
    ] )
