(* Tests for the timing simulator: engine, protocol, policies, and the
   paper's performance claims in miniature. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Engine ---------------------------------------------------------------- *)

let test_engine_order () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng ~delay:5 (fun () -> log := 5 :: !log);
  Engine.schedule eng ~delay:1 (fun () -> log := 1 :: !log);
  Engine.schedule eng ~delay:3 (fun () ->
      log := 3 :: !log;
      Engine.schedule eng ~delay:1 (fun () -> log := 4 :: !log));
  Engine.run eng;
  Alcotest.(check (list int)) "time order" [ 1; 3; 4; 5 ] (List.rev !log);
  check_int "now at end" 5 (Engine.now eng)

let test_engine_ties_fifo () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule eng ~delay:2 (fun () -> log := i :: !log)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_limit () =
  let eng = Engine.create () in
  let rec forever () = Engine.schedule eng ~delay:10 forever in
  forever ();
  check "livelock trapped" true
    (try
       Engine.run ~limit:1000 eng;
       false
     with Engine.Out_of_time -> true)

(* --- Protocol -------------------------------------------------------------- *)

let cfg = Sim_config.make ~nprocs:2 ~net:20 ~dir_occupancy:4 ()

let test_read_miss_latency () =
  let eng = Engine.create () in
  let proto = Proto.create ~init:[ ("x", 7) ] cfg eng in
  let got = ref None in
  Proto.read proto ~proc:0 ~loc:"x" ~k:(fun v -> got := Some (v, Engine.now eng));
  Engine.run eng;
  (* request hop + directory occupancy + reply hop *)
  Alcotest.(check (option (pair int int))) "value and latency" (Some (7, 44)) !got

let test_read_hit_after_miss () =
  let eng = Engine.create () in
  let proto = Proto.create ~init:[ ("x", 7) ] cfg eng in
  let t2 = ref 0 in
  Proto.read proto ~proc:0 ~loc:"x" ~k:(fun _ ->
      let t1 = Engine.now eng in
      Proto.read proto ~proc:0 ~loc:"x" ~k:(fun _ -> t2 := Engine.now eng - t1));
  Engine.run eng;
  check_int "hit costs cache_hit" cfg.Sim_config.cache_hit !t2

let test_write_invalidates_sharer () =
  let eng = Engine.create () in
  let proto = Proto.create cfg eng in
  (* P1 caches x, then P0 writes it: P1 must be invalidated; P0's write is
     globally performed only after the directory's ack. *)
  Proto.read proto ~proc:1 ~loc:"x" ~k:(fun _ ->
      Proto.modify proto ~proc:0 ~loc:"x" ~f:(fun _ -> 9) ~on_commit:(fun _ -> ()));
  Engine.run eng;
  check_int "one invalidation" 1 (Proto.stats proto).Proto.invalidations;
  check_int "settled value" 9 (Proto.settled_value proto "x");
  check_int "counter drained" 0 (Proto.counter proto 0);
  check "P1 invalid" true (Proto.line_state proto 1 "x" = Proto.I)

let test_counter_tracks_gp () =
  let eng = Engine.create () in
  let proto = Proto.create cfg eng in
  let at_commit = ref (-1) in
  let at_zero = ref (-1) in
  Proto.read proto ~proc:1 ~loc:"x" ~k:(fun _ ->
      Proto.modify proto ~proc:0 ~loc:"x" ~f:(fun _ -> 1) ~on_commit:(fun _ ->
          at_commit := Proto.counter proto 0;
          Proto.when_counter_zero proto 0 (fun () ->
              at_zero := Engine.now eng)));
  Engine.run eng;
  check_int "outstanding at commit" 1 !at_commit;
  check "gp strictly after commit" true (!at_zero > 0)

let test_rmw_applies_function () =
  let eng = Engine.create () in
  let proto = Proto.create ~init:[ ("c", 10) ] cfg eng in
  let old = ref 0 in
  Proto.modify proto ~proc:0 ~loc:"c" ~f:(fun v -> v + 5) ~on_commit:(fun o -> old := o);
  Engine.run eng;
  check_int "old value" 10 !old;
  check_int "new value" 15 (Proto.settled_value proto "c")

let test_exclusive_handoff () =
  let eng = Engine.create () in
  let proto = Proto.create cfg eng in
  (* P0 owns x dirty; P1 reads it: value must come from P0's cache. *)
  Proto.modify proto ~proc:0 ~loc:"x" ~f:(fun _ -> 42) ~on_commit:(fun _ ->
      Proto.read proto ~proc:1 ~loc:"x" ~k:(fun v ->
          Alcotest.(check int) "dirty value forwarded" 42 v));
  Engine.run eng;
  check "both shared afterwards" true
    (Proto.line_state proto 0 "x" = Proto.S && Proto.line_state proto 1 "x" = Proto.S)

let test_reservation_defers_foreign_request () =
  let eng = Engine.create () in
  let proto = Proto.create cfg eng in
  let p1_done = ref (-1) in
  let gp_time = ref (-1) in
  (* P1 shares y; P0 writes y (slow gp), immediately owns s (uncached GetX),
     reserves it, and P1 then requests s: the request must wait for P0's
     counter to drain. *)
  Proto.read proto ~proc:1 ~loc:"y" ~k:(fun _ ->
      (* P0 acquires s first so the sync commit is a local hit later. *)
      Proto.modify proto ~proc:0 ~loc:"s" ~f:(fun _ -> 1) ~on_commit:(fun _ ->
          Proto.modify proto ~proc:0 ~loc:"y" ~f:(fun _ -> 1) ~on_commit:(fun _ ->
              (* sync commit on s: a cache hit; reserve it *)
              Proto.modify proto ~proc:0 ~loc:"s" ~f:(fun _ -> 0)
                ~on_commit:(fun _ ->
                  Proto.reserve_if_outstanding proto ~proc:0 ~loc:"s";
                  Alcotest.(check bool) "reserved" true
                    (Proto.line_reserved proto 0 "s");
                  Proto.when_counter_zero proto 0 (fun () ->
                      gp_time := Engine.now eng)));
          (* P1 asks for s concurrently, so its request reaches P0 just
             after the reservation is placed and before the write of y is
             globally performed. *)
          Engine.schedule eng ~delay:2 (fun () ->
              Proto.modify proto ~proc:1 ~loc:"s" ~f:(fun v -> v)
                ~on_commit:(fun _ -> p1_done := Engine.now eng))));
  Engine.run eng;
  check "deferral recorded" true ((Proto.stats proto).Proto.deferrals >= 1);
  check "P1 served only after gp" true (!p1_done > !gp_time && !gp_time > 0)

(* --- Policies and workloads -------------------------------------------------- *)

let test_determinism () =
  let w = Workload.critical_sections () in
  let a = Sim_run.run Cpu.Def2 w in
  let b = Sim_run.run Cpu.Def2 w in
  check_int "same cycles" a.Sim_run.total_cycles b.Sim_run.total_cycles;
  check_int "same messages" a.Sim_run.messages b.Sim_run.messages

let test_handoff_correct_under_all () =
  let w = Workload.fig3_handoff () in
  List.iter
    (fun p ->
      let r = Sim_run.run p w in
      Alcotest.(check (option int))
        (Cpu.policy_name p ^ " observes x=1")
        (Some 1) (Sim_run.observation r "x"))
    Cpu.all_policies

let test_fig3_stall_shape () =
  (* The figure's claim: Definition 1 stalls P0 at the Unset; the new
     implementation never stalls P0; P1 stalls under both. *)
  let w = Workload.fig3_handoff () in
  let d1 = Sim_run.run Cpu.Def1 w in
  let d2 = Sim_run.run Cpu.Def2 w in
  let p0 r = r.Sim_run.proc_stats.(0) in
  check "def1 stalls P0 before its sync" true ((p0 d1).Cpu.stall_pre_sync > 0);
  check_int "def2 P0 pre-sync stall" 0 (p0 d2).Cpu.stall_pre_sync;
  check_int "def2 P0 post-sync stall" 0 (p0 d2).Cpu.stall_sync_gp;
  check "def2 finishes P0 earlier" true ((p0 d2).Cpu.finish < (p0 d1).Cpu.finish);
  check "condition 5 deferred P1" true (d2.Sim_run.deferrals >= 1)

let test_barrier_serialization () =
  (* Section 6: base def2 serializes sync-read spinning; the refinement and
     def1 do not. *)
  let w = Workload.spin_barrier ~nprocs:4 ~sync_spin:true () in
  let base = Sim_run.run Cpu.Def2 w in
  let relaxed = Sim_run.run Cpu.Def2_rs w in
  let def1 = Sim_run.run Cpu.Def1 w in
  check "base def2 slower" true
    (base.Sim_run.total_cycles > relaxed.Sim_run.total_cycles);
  check "base def2 needs more messages" true
    (base.Sim_run.messages > relaxed.Sim_run.messages);
  check "def1 comparable to relaxed" true
    (def1.Sim_run.total_cycles <= base.Sim_run.total_cycles)

let test_critical_sections_ordering () =
  (* The quantitative comparison the paper calls for: weak beats strong. *)
  let w = Workload.critical_sections () in
  let sc = (Sim_run.run Cpu.Sc w).Sim_run.total_cycles in
  let d1 = (Sim_run.run Cpu.Def1 w).Sim_run.total_cycles in
  let d2 = (Sim_run.run Cpu.Def2 w).Sim_run.total_cycles in
  check "def1 <= sc" true (d1 <= sc);
  check "def2 <= def1" true (d2 <= d1);
  check "def2 strictly beats sc" true (d2 < sc)

let test_pipeline_delivers_data () =
  List.iter
    (fun p ->
      let r = Sim_run.run p (Workload.pipeline ()) in
      check
        (Cpu.policy_name p ^ " pipeline data correct")
        true
        (r.Sim_run.observations <> []
        && List.for_all (fun o -> o.Cpu.o_value > 0) r.Sim_run.observations))
    Cpu.all_policies

let test_finals_settle () =
  let w = Workload.critical_sections ~nprocs:3 ~rounds:2 () in
  List.iter
    (fun p ->
      let r = Sim_run.run p w in
      (* Every processor's private flag must be written. *)
      for i = 0 to 2 do
        Alcotest.(check (option int))
          (Printf.sprintf "%s private%d" (Cpu.policy_name p) i)
          (Some 1)
          (Sim_run.final r (Printf.sprintf "private%d" i))
      done)
    Cpu.all_policies

(* --- Section 5.1 condition checking on traces ------------------------------ *)

let workloads =
  [
    ("fig3", Workload.fig3_handoff ());
    ("locks", Workload.critical_sections ());
    ("barrier", Workload.spin_barrier ());
    ("pipeline", Workload.pipeline ());
  ]

let test_def2_satisfies_conditions () =
  (* The base def2 policy implements the Section 5.1 conditions; the trace
     checker must find no violation on any workload, with or without
     network reordering. *)
  List.iter
    (fun jitter ->
      let cfg = Sim_config.make ~net_jitter:jitter () in
      List.iter
        (fun (name, w) ->
          let r = Sim_run.run ~cfg Cpu.Def2 w in
          match Sim_trace.check_all r.Sim_run.trace with
          | [] -> ()
          | v :: _ ->
              Alcotest.failf "def2 %s jitter=%d: %a" name jitter
                Sim_trace.pp_violation v)
        workloads)
    [ 0; 13; 55 ]

let test_all_policies_clean_on_spinless_workloads () =
  (* The Section 5.1 conditions are the spec of the def2 implementation:
     policies that serve sync reads from shared copies (sc, def1, def2-rs)
     can read a stale value in the window before an in-flight invalidation
     lands, which condition 3 — as a property of commit timestamps — counts
     as out-of-order.  On workloads without sync-read spinning, however,
     every policy is clean. *)
  List.iter
    (fun (name, w) ->
      List.iter
        (fun p ->
          let r = Sim_run.run p w in
          Alcotest.(check int)
            (Printf.sprintf "%s %s violations" name (Cpu.policy_name p))
            0
            (List.length (Sim_trace.check_all r.Sim_run.trace)))
        Cpu.all_policies)
    [
      ("fig3", Workload.fig3_handoff ());
      ("locks", Workload.critical_sections ());
    ]

let test_noresv_violates_condition5 () =
  (* Removing the reserve bits breaks condition 5 on the Figure 3 pattern,
     and the trace checker catches it even when the uniform-latency
     schedule happens to hide the stale read end to end. *)
  let r = Sim_run.run Cpu.Def2_noresv (Workload.fig3_handoff ()) in
  let v = Sim_trace.check_condition5 r.Sim_run.trace in
  check "condition 5 violated" true (v <> []);
  (* And with network reordering the breakage becomes observable: the
     consumer reads stale data. *)
  let cfg = Sim_config.make ~net_jitter:30 () in
  let r = Sim_run.run ~cfg Cpu.Def2_noresv (Workload.fig3_handoff ()) in
  Alcotest.(check (option int)) "stale datum observed" (Some 0)
    (Sim_run.observation r "x")

let test_def2_correct_under_jitter () =
  List.iter
    (fun jitter ->
      let cfg = Sim_config.make ~net_jitter:jitter () in
      let r = Sim_run.run ~cfg Cpu.Def2 (Workload.fig3_handoff ()) in
      Alcotest.(check (option int))
        (Printf.sprintf "jitter %d" jitter)
        (Some 1) (Sim_run.observation r "x"))
    [ 0; 10; 30; 55; 90; 120 ]

let test_trace_times_ordered () =
  (* Every completed event has gen <= commit <= gp. *)
  let r = Sim_run.run Cpu.Def2 (Workload.critical_sections ()) in
  List.iter
    (fun e ->
      if e.Sim_trace.ecommit >= 0 then begin
        check "gen <= commit" true (e.Sim_trace.egen <= e.Sim_trace.ecommit);
        if e.Sim_trace.egp >= 0 then
          check "commit <= gp" true (e.Sim_trace.ecommit <= e.Sim_trace.egp)
      end)
    r.Sim_run.trace

let test_ticket_lock_fifo () =
  (* Ticket lock: critical sections execute in ticket order under every
     policy, so the last writer is always the last processor. *)
  List.iter
    (fun p ->
      let r = Sim_run.run p (Workload.ticket_lock ()) in
      Alcotest.(check (option int))
        (Cpu.policy_name p ^ " FIFO order held")
        (Some 4) (Sim_run.final r "shared"))
    Cpu.all_policies

let test_sense_barrier_serialization () =
  (* The Section 6 penalty on a realistic barrier: base def2 serializes the
     sync-read spinning; the refinement does not. *)
  let w = Workload.sense_barrier () in
  let base = (Sim_run.run Cpu.Def2 w).Sim_run.total_cycles in
  let relaxed = (Sim_run.run Cpu.Def2_rs w).Sim_run.total_cycles in
  check "base def2 pays for exclusive spinning" true (base > relaxed)

let test_new_workloads_def2_conditions () =
  List.iter
    (fun w ->
      let r = Sim_run.run Cpu.Def2 w in
      Alcotest.(check int)
        (w.Workload.name ^ " def2 violations")
        0
        (List.length (Sim_trace.check_all r.Sim_run.trace)))
    [ Workload.ticket_lock (); Workload.sense_barrier () ]

(* --- Spin parking ------------------------------------------------------------ *)

(* Parking must be invisible in every observable: the full timing
   fingerprint (normalized trace, stall table, finals, total cycles) and
   the per-processor statistics of a parked run are byte-for-byte those of
   the same run with parking off. *)
let fingerprint ~cfg policy w =
  let obs = Obs.create () in
  let r = Sim_run.run ~cfg ~obs policy w in
  ( Sim_run.golden_artifact ~obs r,
    r.Sim_run.proc_stats,
    r.Sim_run.events,
    r.Sim_run.finals )

(* Byte-equality holds across the matrix except in the most collision-prone
   cells: ticket16 parks 15 same-phase spinners on one line, and when two
   of their post-invalidation reads miss on the same cycle, the resumed
   events' within-cycle order (their tie-break seq is allocated at wake,
   in per-line delivery order) can differ from the live chains' order
   (inherited from spin entry, cycle by cycle, since before the park) — a
   tie-break the wake cannot reconstruct, because the live chain may have
   allocated it on a cycle that has already passed.  Excluded cells keep
   the weaker guarantees: identical finals and no extra events.  See
   DESIGN.md (event engine / spin parking) for the full analysis. *)
let park_exact name p =
  match (name, p) with "ticket16", (Cpu.Sc | Cpu.Def2_rs) -> false | _ -> true

let park_matrix =
  [
    ("fig3", fun () -> Workload.fig3_handoff ());
    ("barrier8", fun () -> Workload.spin_barrier ~nprocs:8 ~sync_spin:true ());
    ("locks8", fun () -> Workload.critical_sections ~nprocs:8 ());
    ("pipeline8", fun () -> Workload.pipeline ~nprocs:8 ());
    ("ticket16", fun () -> Workload.ticket_lock ~nprocs:16 ());
    ("sense16", fun () -> Workload.sense_barrier ~nprocs:16 ());
  ]

let test_parking_invisible () =
  List.iter
    (fun (name, gen) ->
      List.iter
        (fun p ->
          let on, st_on, ev_on, fin_on =
            fingerprint ~cfg:(Sim_config.make ()) p (gen ())
          in
          let off, st_off, ev_off, fin_off =
            fingerprint ~cfg:(Sim_config.make ~park_spins:false ()) p (gen ())
          in
          if park_exact name p then begin
            Alcotest.(check string)
              (Printf.sprintf "%s %s fingerprint" name (Cpu.policy_name p))
              off on;
            check
              (Printf.sprintf "%s %s proc stats" name (Cpu.policy_name p))
              true
              (st_on = st_off)
          end
          else
            check
              (Printf.sprintf "%s %s finals" name (Cpu.policy_name p))
              true
              (fin_on = fin_off);
          (* The whole point: a parked spin costs fewer engine events. *)
          check
            (Printf.sprintf "%s %s no extra events" name (Cpu.policy_name p))
            true (ev_on <= ev_off))
        Cpu.all_policies)
    park_matrix

let test_parking_invisible_under_faults () =
  (* Fault-perturbed delivery times move the wake cycles around; the replay
     must still reproduce the unparked run exactly.  Cells verified byte-
     identical under chaos for every listed policy and seed; spin-collision
     ambiguity (see [park_exact]) excludes barrier8 under def2-rs and all
     of ticket16, which is held to the finals guarantee below. *)
  List.iter
    (fun (name, gen, policies) ->
      List.iter
        (fun p ->
          List.iter
            (fun seed ->
              let go park =
                fingerprint
                  ~cfg:
                    (Sim_config.make ~faults:Fault.chaos ~fault_seed:seed
                       ~park_spins:park ())
                  p (gen ())
              in
              let on, st_on, _, _ = go true in
              let off, st_off, _, _ = go false in
              Alcotest.(check string)
                (Printf.sprintf "%s %s seed %d" name (Cpu.policy_name p) seed)
                off on;
              check
                (Printf.sprintf "%s %s seed %d stats" name (Cpu.policy_name p)
                   seed)
                true
                (st_on = st_off))
            [ 0; 1; 2 ])
        policies)
    [
      ( "barrier8",
        (fun () -> Workload.spin_barrier ~nprocs:8 ~sync_spin:true ()),
        [ Cpu.Def1 ] );
      ( "locks8",
        (fun () -> Workload.critical_sections ~nprocs:8 ()),
        [ Cpu.Def1; Cpu.Def2_rs ] );
      ( "pipeline16",
        (fun () -> Workload.pipeline ~nprocs:16 ()),
        [ Cpu.Def1; Cpu.Def2_rs ] );
    ];
  (* ticket16 under chaos: the weak guarantee must still hold. *)
  List.iter
    (fun seed ->
      let go park =
        fingerprint
          ~cfg:
            (Sim_config.make ~faults:Fault.chaos ~fault_seed:seed
               ~park_spins:park ())
          Cpu.Def1
          (Workload.ticket_lock ~nprocs:16 ())
      in
      let _, _, _, fin_on = go true in
      let _, _, _, fin_off = go false in
      check
        (Printf.sprintf "ticket16 def1 seed %d finals" seed)
        true
        (fin_on = fin_off))
    [ 0; 1; 2 ]

let test_parking_saves_events () =
  (* At scale the saving is the headline: a 16-core spin-heavy run must
     shed the bulk of its per-iteration events. *)
  let _, _, ev_on, _ =
    fingerprint ~cfg:(Sim_config.make ())
      Cpu.Def1
      (Workload.pipeline ~nprocs:16 ())
  in
  let _, _, ev_off, _ =
    fingerprint
      ~cfg:(Sim_config.make ~park_spins:false ~batch_events:false ())
      Cpu.Def1
      (Workload.pipeline ~nprocs:16 ())
  in
  check "parked run sheds most events" true (ev_on * 5 < ev_off)

(* --- Fault campaign at 16 cores ---------------------------------------------- *)

let test_scaled_workloads_under_faults () =
  (* Every fault scenario, several seeds, sanitizer on: the scaled lock and
     barrier workloads must still settle to the correct finals with no
     sanitizer or watchdog noise. *)
  List.iter
    (fun (scenario, profile) ->
      List.iter
        (fun seed ->
          let cfg = Sim_config.make ~faults:profile ~fault_seed:seed () in
          let r =
            Sim_run.run ~cfg Cpu.Def2 (Workload.ticket_lock ~nprocs:16 ())
          in
          Alcotest.(check (option int))
            (Printf.sprintf "ticket16 %s seed %d last writer" scenario seed)
            (Some 16)
            (Sim_run.final r "shared");
          let r =
            Sim_run.run ~cfg Cpu.Def1 (Workload.sense_barrier ~nprocs:16 ())
          in
          Alcotest.(check (option int))
            (Printf.sprintf "sense16 %s seed %d arrivals" scenario seed)
            (Some 32)
            (Sim_run.final r "count"))
        [ 0; 1; 2 ])
    Fault.scenarios

(* --- Workload argument validation -------------------------------------------- *)

let test_workload_validation () =
  let rejects msg f =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () -> ignore (f ()))
  in
  rejects "Workload.ticket_lock: nprocs must be in [1, 1024] (got 0)"
    (fun () -> Workload.ticket_lock ~nprocs:0 ());
  rejects
    (Printf.sprintf
       "Workload.sense_barrier: nprocs must be in [1, 1024] (got %d)"
       (Workload.max_procs + 1))
    (fun () -> Workload.sense_barrier ~nprocs:(Workload.max_procs + 1) ());
  rejects "Workload.sense_barrier: rounds must be in [1, 4611686018427387903] (got 0)"
    (fun () -> Workload.sense_barrier ~rounds:0 ());
  rejects
    "Workload.critical_sections: work_in must be in [0, 4611686018427387903] (got -1)"
    (fun () -> Workload.critical_sections ~work_in:(-1) ());
  rejects "Workload.pipeline: batch must be in [1, 4611686018427387903] (got 0)"
    (fun () -> Workload.pipeline ~batch:0 ());
  rejects
    "Workload.fig3_handoff: work_before must be in [0, 4611686018427387903] (got -3)"
    (fun () -> Workload.fig3_handoff ~work_before:(-3) ());
  (* In-range widths construct fine. *)
  check "wide barrier accepted" true
    (Workload.num_threads (Workload.spin_barrier ~nprocs:64 ()) = 64)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "sim",
    [
      t "engine time order" test_engine_order;
      t "engine fifo ties" test_engine_ties_fifo;
      t "engine livelock limit" test_engine_limit;
      t "read miss latency" test_read_miss_latency;
      t "read hit after miss" test_read_hit_after_miss;
      t "write invalidates sharer" test_write_invalidates_sharer;
      t "counter tracks global performance" test_counter_tracks_gp;
      t "rmw applies function" test_rmw_applies_function;
      t "exclusive handoff" test_exclusive_handoff;
      t "reservation defers foreign sync" test_reservation_defers_foreign_request;
      t "determinism" test_determinism;
      t "handoff correct under all policies" test_handoff_correct_under_all;
      t "figure 3 stall shape" test_fig3_stall_shape;
      t "barrier spin serialization" test_barrier_serialization;
      t "critical sections ordering" test_critical_sections_ordering;
      t "pipeline delivers data" test_pipeline_delivers_data;
      t "finals settle" test_finals_settle;
      t "def2 satisfies Section 5.1 conditions" test_def2_satisfies_conditions;
      t "all policies clean on spinless workloads" test_all_policies_clean_on_spinless_workloads;
      t "no-reserve ablation violates condition 5" test_noresv_violates_condition5;
      t "def2 correct under network reordering" test_def2_correct_under_jitter;
      t "trace times ordered" test_trace_times_ordered;
      t "ticket lock FIFO" test_ticket_lock_fifo;
      t "sense barrier serialization" test_sense_barrier_serialization;
      t "new workloads meet def2 conditions" test_new_workloads_def2_conditions;
      t "spin parking is timing-invisible" test_parking_invisible;
      t "spin parking invisible under faults" test_parking_invisible_under_faults;
      t "spin parking sheds events at scale" test_parking_saves_events;
      t "scaled workloads survive fault campaign" test_scaled_workloads_under_faults;
      t "workload argument validation" test_workload_validation;
    ] )
