(* The heap engine vs the Map reference engine (Engine_ref): a differential
   property test over random schedule trees — including same-cycle FIFO
   ties, zero delays and schedule-during-run — plus pins for the
   Out_of_time boundary and the executed/merged accounting. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A schedule tree: each node is one scheduled thunk that, when it runs,
   schedules its children.  Small delays maximize same-cycle collisions. *)
type spec = { id : int; delay : int; children : spec list }

(* Number nodes in planting order so both engines log identical ids. *)
let number forest =
  let ctr = ref 0 in
  let rec go { delay; children; _ } =
    let id = !ctr in
    incr ctr;
    { id; delay; children = List.map go children }
  in
  List.map go forest

let spec_gen =
  QCheck.Gen.(
    let node self depth =
      let* delay = int_bound 5 in
      let* nkids = if depth = 0 then return 0 else int_bound 3 in
      let* children = list_size (return nkids) (self (depth - 1)) in
      return { id = 0; delay; children }
    in
    let rec tree depth = node tree depth in
    map number (list_size (int_range 1 20) (tree 3)))

let rec pp_spec ppf { delay; children; _ } =
  Format.fprintf ppf "@[<h>%d[%a]@]" delay
    (Format.pp_print_list pp_spec)
    children

let arbitrary_forest =
  QCheck.make
    ~print:(Format.asprintf "%a" (Format.pp_print_list pp_spec))
    spec_gen

(* Drive any engine over a forest; the log of (node id, clock at execution)
   is the observable behaviour the implementations must agree on. *)
let drive ~schedule ~now ~run forest =
  let log = ref [] in
  let rec plant spec =
    schedule ~delay:spec.delay (fun () ->
        log := (spec.id, now ()) :: !log;
        List.iter plant spec.children)
  in
  List.iter plant forest;
  run ();
  List.rev !log

let drive_ref forest =
  let e = Engine_ref.create () in
  let log =
    drive
      ~schedule:(Engine_ref.schedule e)
      ~now:(fun () -> Engine_ref.now e)
      ~run:(fun () -> Engine_ref.run e)
      forest
  in
  (log, Engine_ref.executed e)

let drive_heap ~batch forest =
  let e = Engine.create ~batch () in
  let log =
    drive ~schedule:(Engine.schedule e)
      ~now:(fun () -> Engine.now e)
      ~run:(fun () -> Engine.run e)
      forest
  in
  (log, Engine.executed e, Engine.merged e)

let prop_heap_matches_ref =
  QCheck.Test.make ~name:"heap engine ≡ map engine (batch off)" ~count:500
    arbitrary_forest (fun forest ->
      let ref_log, ref_exec = drive_ref forest in
      let heap_log, heap_exec, heap_merged = drive_heap ~batch:false forest in
      ref_log = heap_log && ref_exec = heap_exec && heap_merged = 0)

let prop_batching_preserves_order =
  QCheck.Test.make ~name:"batched heap engine ≡ map engine" ~count:500
    arbitrary_forest (fun forest ->
      let ref_log, ref_exec = drive_ref forest in
      let heap_log, heap_exec, heap_merged = drive_heap ~batch:true forest in
      (* Same thunks in the same order at the same cycles; batching only
         moves the cell/thunk split in the accounting. *)
      ref_log = heap_log
      && heap_exec + heap_merged = ref_exec
      && heap_exec <= ref_exec)

(* Same-cycle FIFO: interleaved same-cycle schedules from outside and from
   inside a running event must run in insertion order on both engines. *)
let test_fifo_ties () =
  let forest =
    number
      [
        {
          id = 0;
          delay = 0;
          children =
            [
              { id = 0; delay = 0; children = [] };
              { id = 0; delay = 0; children = [] };
            ];
        };
        { id = 0; delay = 0; children = [] };
        { id = 0; delay = 0; children = [] };
      ]
  in
  let ref_log, _ = drive_ref forest in
  let heap_log, _, _ = drive_heap ~batch:true forest in
  check "insertion order" true (ref_log = heap_log);
  (* Planted 0,3,4 up front; 0 runs first and plants 1,2 which must run
     after the already-queued same-cycle 3,4. *)
  check_int "expected order" 0 (fst (List.nth ref_log 0));
  Alcotest.(check (list int))
    "ids in insertion order" [ 0; 3; 4; 1; 2 ] (List.map fst ref_log)

let test_out_of_time_boundary () =
  let at_limit create schedule run =
    let e = create () in
    let ran = ref false in
    schedule e ~delay:100 (fun () -> ran := true);
    run ~limit:100 e;
    !ran
  in
  check "heap: event at the limit runs" true
    (at_limit
       (fun () -> Engine.create ())
       Engine.schedule
       (fun ~limit e -> Engine.run ~limit e));
  check "ref: event at the limit runs" true
    (at_limit Engine_ref.create Engine_ref.schedule (fun ~limit e ->
         Engine_ref.run ~limit e));
  let past_limit () =
    let e = Engine.create () in
    Engine.schedule e ~delay:101 (fun () -> ());
    match Engine.run ~limit:100 e with
    | () -> false
    | exception Engine.Out_of_time ->
        (* The offending event was not consumed: the clock never advanced
           to it — matching the reference engine. *)
        Engine.now e = 0 && Engine.executed e = 0
  in
  check "heap: past the limit raises without consuming" true (past_limit ());
  let e = Engine.create () in
  check "negative delay rejected" true
    (match Engine.schedule e ~delay:(-1) (fun () -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Pin the executed/merged split on a known scenario: three consecutive
   same-cycle schedules merge into one cell; work scheduled same-cycle from
   inside the running cell starts a fresh cell (the reference order). *)
let test_executed_merged_pins () =
  let e = Engine.create ~batch:true () in
  let order = ref [] in
  let hit n () = order := n :: !order in
  Engine.schedule e ~delay:0 (fun () ->
      hit 0 ();
      Engine.schedule e ~delay:0 (hit 3);
      Engine.schedule e ~delay:0 (hit 4));
  Engine.schedule e ~delay:0 (hit 1);
  Engine.schedule e ~delay:0 (hit 2);
  Engine.run e;
  Alcotest.(check (list int)) "order" [ 0; 1; 2; 3; 4 ] (List.rev !order);
  check_int "cells executed" 2 (Engine.executed e);
  check_int "thunks merged" 3 (Engine.merged e);
  (* Batch off: one cell per thunk, reference accounting. *)
  let e = Engine.create ~batch:false () in
  Engine.schedule e ~delay:0 ignore;
  Engine.schedule e ~delay:0 ignore;
  Engine.run e;
  check_int "unbatched cells = thunks" 2 (Engine.executed e);
  check_int "unbatched merges none" 0 (Engine.merged e)

let test_running_since () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule e ~delay:5 (fun () ->
      seen := ("outer", Engine.running_since e) :: !seen;
      Engine.schedule e ~delay:0 (fun () ->
          seen := ("inner", Engine.running_since e) :: !seen));
  Engine.run e;
  Alcotest.(check (list (pair string int)))
    "cells report their creation cycle"
    [ ("outer", 0); ("inner", 5) ]
    (List.rev !seen)

let suite =
  ( "engine",
    [
      QCheck_alcotest.to_alcotest prop_heap_matches_ref;
      QCheck_alcotest.to_alcotest prop_batching_preserves_order;
      Alcotest.test_case "same-cycle FIFO ties" `Quick test_fifo_ties;
      Alcotest.test_case "Out_of_time boundary" `Quick
        test_out_of_time_boundary;
      Alcotest.test_case "executed/merged accounting pins" `Quick
        test_executed_merged_pins;
      Alcotest.test_case "running_since reports cell creation" `Quick
        test_running_since;
    ] )
