(* The resilience layer: fault injection, the reliable transport, the
   coherence sanitizer, the watchdog, and the fuel-bounded explorer. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Substring containment, for diagnostics-mention-X assertions. *)
let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* --- the fault schedule itself -------------------------------------------- *)

let decisions seed n =
  let f = Fault.create ~profile:Fault.chaos seed in
  List.init n (fun _ ->
      let d = Fault.decide f in
      (d.Fault.extra_delay, d.Fault.drops, d.Fault.duplicate))

let test_fault_determinism () =
  Alcotest.(check (list (triple int int bool)))
    "same seed, same schedule" (decisions 42 500) (decisions 42 500);
  check "different seeds diverge" true (decisions 1 500 <> decisions 2 500)

let test_fault_respects_profile () =
  let f = Fault.create ~profile:Fault.chaos 7 in
  for _ = 1 to 2000 do
    let d = Fault.decide f in
    check "spike bounded" true
      (d.Fault.extra_delay >= 0
      && d.Fault.extra_delay <= Fault.chaos.Fault.max_spike);
    check "drops bounded" true
      (d.Fault.drops >= 0 && d.Fault.drops <= Fault.chaos.Fault.max_drops)
  done;
  let c = Fault.counts f in
  check "some spikes occurred" true (c.Fault.n_spikes > 0);
  check "some drops occurred" true (c.Fault.n_drops > 0);
  check "some dups occurred" true (c.Fault.n_dups > 0);
  let quiet = Fault.create ~profile:Fault.quiet 7 in
  for _ = 1 to 100 do
    let d = Fault.decide quiet in
    check "quiet injects nothing" true (d = Fault.benign)
  done

(* --- transport ------------------------------------------------------------- *)

let run_handoff ?faults ?(fault_seed = 0) ?(mutation = Sim_config.No_mutation)
    policy =
  let cfg = Sim_config.make ?faults ~fault_seed ~mutation () in
  Sim_run.run ~cfg policy (Workload.fig3_handoff ())

let test_no_fault_timing_unchanged () =
  (* The transport layer under no fault profile reproduces the seed
     simulator's timing; the sanitizer is passive and changes nothing. *)
  let r = run_handoff Cpu.Def2 in
  let r' = run_handoff Cpu.Def2 in
  check_int "deterministic cycles" r.Sim_run.total_cycles r'.Sim_run.total_cycles;
  check_int "no retransmits" 0 r.Sim_run.retransmits;
  check_int "no dups" 0 r.Sim_run.dups_suppressed;
  check "sanitizer swept" true (r.Sim_run.sanitizer_checks > 0)

let test_faults_observable () =
  (* Under each fault scenario the handoff still completes, the trace still
     satisfies the Section 5.1 conditions, and the transport statistics
     show the faults actually happened. *)
  let saw_retransmit = ref false and saw_dup = ref false in
  List.iter
    (fun (name, profile) ->
      if name <> "none" then
        for seed = 0 to 9 do
          let r = run_handoff ~faults:profile ~fault_seed:seed Cpu.Def2 in
          check ("handoff correct under " ^ name) true
            (Sim_run.observation r "x" = Some 1);
          check_int
            ("conditions hold under " ^ name)
            0
            (List.length (Sim_trace.check_all r.Sim_run.trace));
          if r.Sim_run.retransmits > 0 then saw_retransmit := true;
          if r.Sim_run.dups_suppressed > 0 then saw_dup := true
        done)
    Fault.scenarios;
  check "loss exercised the retransmit path" true !saw_retransmit;
  check "duplication exercised the dedup path" true !saw_dup

let test_fault_run_deterministic () =
  let r = run_handoff ~faults:Fault.chaos ~fault_seed:3 Cpu.Def2 in
  let r' = run_handoff ~faults:Fault.chaos ~fault_seed:3 Cpu.Def2 in
  check_int "same seed, same cycles" r.Sim_run.total_cycles
    r'.Sim_run.total_cycles;
  check_int "same seed, same messages" r.Sim_run.messages r'.Sim_run.messages

(* --- mutation checks: the monitors catch planted bugs ---------------------- *)

let test_sanitizer_catches_skipped_invalidation () =
  (* A sharer that acks an invalidation without applying it leaves a stale
     shared copy alongside the writer's modified one: the sanitizer must
     abort with a single-writer violation and a diagnostic dump. *)
  match
    Sim_run.try_run
      ~cfg:(Sim_config.make ~mutation:Sim_config.Skip_invalidation ())
      Cpu.Def2
      (Workload.fig3_handoff ())
  with
  | Ok _ -> Alcotest.fail "sanitizer missed the skipped invalidation"
  | Error (Sim_run.Invariant diag) ->
      check "diagnostic names the invariant" true
        (contains ~affix:"single-writer" diag
        || contains ~affix:"stale" diag);
      check "diagnostic embeds the dump" true
        (contains ~affix:"directory:" diag)
  | Error f ->
      Alcotest.failf "wrong failure kind: %s" (Sim_run.failure_kind f)

let test_watchdog_catches_forgotten_ack () =
  (* A sharer that applies an invalidation but never acknowledges it wedges
     the directory line; the per-transaction deadline must escalate to a
     wedge report instead of hanging. *)
  match
    Sim_run.try_run
      ~cfg:(Sim_config.make ~mutation:Sim_config.Forget_ack ())
      Cpu.Def2
      (Workload.fig3_handoff ())
  with
  | Ok _ -> Alcotest.fail "watchdog missed the wedged directory line"
  | Error (Sim_run.Deadlock diag) | Error (Sim_run.Livelock diag) ->
      check "diagnostic embeds the dump" true
        (contains ~affix:"in-flight transactions" diag)
  | Error (Sim_run.Invariant d) ->
      Alcotest.failf "expected a wedge, got an invariant violation: %s" d

let test_dump_contents () =
  match
    Sim_run.try_run
      ~cfg:(Sim_config.make ~mutation:Sim_config.Forget_ack ())
      Cpu.Def2
      (Workload.fig3_handoff ())
  with
  | Ok _ -> Alcotest.fail "expected a wedge"
  | Error f ->
      let d = Fmt.str "%a" Sim_run.pp_failure f in
      List.iter
        (fun affix ->
          check (Printf.sprintf "dump mentions %S" affix) true
            (contains ~affix d))
        [ "directory:"; "caches:"; "recent protocol events"; "BUSY" ]

(* --- the resilience campaign ----------------------------------------------- *)

(* Hundreds of seeded fault schedules across the litmus corpus: every run
   terminates, passes the sanitizer, and — for DRF0 programs under the
   paper's weakly-ordered policies — yields an outcome SC allows
   (Theorem 1/"appears sequentially consistent", now under interconnect
   faults). *)
(* [read_sync_release]'s [await s 0] races the other thread's [Set(s,1)]:
   on schedules where the Set wins, the await legitimately spins forever —
   a property of the program, not a protocol wedge.  The simulator runs
   one schedule per seed, so the always-terminates campaign excludes it. *)
let campaign_corpus =
  List.filter
    (fun e -> Prog.name e.Litmus_classics.prog <> "read_sync_release")
    Litmus_classics.all

let test_resilience_campaign () =
  let runs = ref 0 and wedged = ref 0 and non_sc = ref 0 in
  List.iter
    (fun entry ->
      let prog = entry.Litmus_classics.prog in
      let sc_outcomes = Machines.outcomes Machines.sc prog in
      List.iter
        (fun (name, profile) ->
          if name <> "none" then
            for seed = 0 to 4 do
              incr runs;
              let cfg =
                Sim_config.make ~faults:profile ~fault_seed:seed ()
              in
              match Sim_litmus.try_run ~cfg Cpu.Def2 prog with
              | Error f ->
                  incr wedged;
                  Alcotest.failf "%s wedged under %s seed %d: %s"
                    (Prog.name prog) name seed (Sim_run.failure_kind f)
              | Ok r ->
                  if
                    entry.Litmus_classics.drf0
                    && not (Sim_litmus.in_set prog r.Sim_litmus.final sc_outcomes)
                  then begin
                    incr non_sc;
                    Alcotest.failf
                      "%s (DRF0) produced a non-SC outcome %a under %s seed %d"
                      (Prog.name prog) Final.pp r.Sim_litmus.final name seed
                  end
            done)
        Fault.scenarios)
    campaign_corpus;
  check "at least 200 schedules" true (!runs >= 200);
  check_int "no wedged runs" 0 !wedged;
  check_int "no SC violations on DRF0 programs" 0 !non_sc

let test_campaign_all_policies () =
  (* The remaining correct policies survive a smaller sweep. *)
  List.iter
    (fun policy ->
      List.iter
        (fun entry ->
          let prog = entry.Litmus_classics.prog in
          let cfg = Sim_config.make ~faults:Fault.chaos ~fault_seed:11 () in
          match Sim_litmus.try_run ~cfg policy prog with
          | Ok _ -> ()
          | Error f ->
              Alcotest.failf "%s wedged under %s: %s" (Prog.name prog)
                (Cpu.policy_name policy) (Sim_run.failure_kind f))
        campaign_corpus)
    Cpu.all_policies

(* --- fuel-bounded exploration ---------------------------------------------- *)

let gen_config =
  {
    Litmus_gen.default_config with
    Litmus_gen.max_threads = 3;
    max_instrs = 6;
  }

let test_fuel_partial_is_subset () =
  (* On programs small enough to explore fully, every fuel bound yields a
     subset of the complete outcome set, and enough fuel yields exactly
     the complete set. *)
  for seed = 0 to 19 do
    match Litmus_gen.generate_live ~config:gen_config seed with
    | None -> ()
    | Some prog ->
        let full = Machines.outcomes Machines.ooo prog in
        List.iter
          (fun fuel ->
            match Machines.outcomes_bounded Machines.ooo ~fuel prog with
            | Explore.Complete s ->
                check "complete = full" true (Final.Set.equal s full)
            | Explore.Partial s ->
                check "partial subset of full" true (Final.Set.subset s full))
          [ 0; 1; 10; 100; 1000; 100000 ]
  done

let test_fuel_never_hangs () =
  (* On the largest generated programs a small budget must return quickly
     with Partial, never hang or raise. *)
  let big =
    {
      Litmus_gen.default_config with
      Litmus_gen.max_threads = 4;
      max_instrs = 10;
      allow_await = false;
    }
  in
  for seed = 0 to 19 do
    let prog = Litmus_gen.generate ~config:big seed in
    match Machines.outcomes_bounded Machines.ooo ~fuel:500 prog with
    | Explore.Complete _ | Explore.Partial _ -> ()
  done;
  check "bounded exploration always returned" true true

let test_fuel_zero_is_partial () =
  let prog = Litmus_classics.dekker.Litmus_classics.prog in
  match Machines.outcomes_bounded Machines.wbuf ~fuel:1 prog with
  | Explore.Complete _ -> Alcotest.fail "one state cannot finish dekker"
  | Explore.Partial s -> check_int "nothing reached" 0 (Final.Set.cardinal s)

let suite =
  ( "fault",
    [
      Alcotest.test_case "fault schedule determinism" `Quick
        test_fault_determinism;
      Alcotest.test_case "fault schedule respects profile" `Quick
        test_fault_respects_profile;
      Alcotest.test_case "no-fault timing unchanged" `Quick
        test_no_fault_timing_unchanged;
      Alcotest.test_case "faults observable, conditions hold" `Quick
        test_faults_observable;
      Alcotest.test_case "faulted runs deterministic" `Quick
        test_fault_run_deterministic;
      Alcotest.test_case "sanitizer catches skipped invalidation" `Quick
        test_sanitizer_catches_skipped_invalidation;
      Alcotest.test_case "watchdog catches forgotten ack" `Quick
        test_watchdog_catches_forgotten_ack;
      Alcotest.test_case "diagnostic dump contents" `Quick test_dump_contents;
      Alcotest.test_case "200+ seeded schedules terminate SC" `Slow
        test_resilience_campaign;
      Alcotest.test_case "chaos sweep across policies" `Slow
        test_campaign_all_policies;
    ] )

let fuel_suite =
  ( "explore-fuel",
    [
      Alcotest.test_case "partial is sound subset" `Quick
        test_fuel_partial_is_subset;
      Alcotest.test_case "bounded exploration never hangs" `Quick
        test_fuel_never_hangs;
      Alcotest.test_case "tiny fuel reports partial" `Quick
        test_fuel_zero_is_partial;
    ] )
