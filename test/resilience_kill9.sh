#!/usr/bin/env bash
# Crash-safety end to end: SIGKILL a checkpointed verify mid-flight, resume
# from the checkpoint, and require the final report — verdicts AND state
# counts — to be byte-identical to an uninterrupted run.  This is the
# contract the whole resilience layer exists for: a hard kill at an
# arbitrary moment loses bounded work and corrupts nothing.
set -u

WEAKORD="$1"
fails=0

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# A four-processor workload big enough that verification takes seconds:
# the kill lands mid-exploration, not in the epilogue.
cat > "$tmp/big4.litmus" <<'EOF'
name big4
{ x=0; y=0; z=0; w=0 }
P0          | P1          | P2          | P3          ;
W x 1       | W y 1       | W z 1       | W w 1       ;
r0 := R y   | r3 := R z   | r6 := R w   | r9 := R x   ;
W x 2       | W y 2       | W z 2       | W w 2       ;
r1 := R z   | r4 := R w   | r7 := R x   | r10 := R y  ;
exists (0:r0=0)
EOF

run_verify() { # run_verify EXTRA_ARGS... (stdout to caller)
  "$WEAKORD" verify -m def2 --model drf0 "$@" "$tmp/big4.litmus"
}

# Uninterrupted baseline.
run_verify > "$tmp/baseline.out" 2>/dev/null
baseline_code=$?

# Checkpointed run, killed the moment a checkpoint exists on disk.
run_verify --checkpoint "$tmp/ck.snap" --checkpoint-every 200 \
  > /dev/null 2>&1 &
pid=$!
for _ in $(seq 1 600); do
  [ -s "$tmp/ck.snap" ] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.05
done
if ! kill -0 "$pid" 2>/dev/null; then
  # Finished before we could kill it: the machine is too fast for the
  # workload, but the final checkpoint still pins the resume path below.
  echo "note: verify finished before SIGKILL; resuming from the final checkpoint" >&2
else
  kill -9 "$pid" 2>/dev/null
fi
wait "$pid" 2>/dev/null

if [ ! -s "$tmp/ck.snap" ]; then
  echo "FAIL: no checkpoint on disk after the kill" >&2
  exit 1
fi

# Resume and compare: same exit code, same report (verdicts + state counts).
run_verify --resume "$tmp/ck.snap" > "$tmp/resumed.out" 2>/dev/null
resumed_code=$?

if [ "$resumed_code" -ne "$baseline_code" ]; then
  echo "FAIL: resumed exit $resumed_code, uninterrupted exit $baseline_code" >&2
  fails=$((fails + 1))
fi
if ! cmp -s "$tmp/baseline.out" "$tmp/resumed.out"; then
  echo "FAIL: resumed report differs from the uninterrupted run:" >&2
  diff "$tmp/baseline.out" "$tmp/resumed.out" >&2
  fails=$((fails + 1))
fi

# --- SIGKILL mid-spill -------------------------------------------------------
# The same round trip under a memory budget tight enough that the visited
# set spills to disk: the kill lands while immutable run files exist, and
# the resumed run must re-open exactly those runs and finish with the
# verbose report — including spill statistics — byte-identical to an
# uninterrupted spilling run.
MEM=2000000
spill_base="$tmp/spill-base"; mkdir -p "$spill_base"
spill="$tmp/spill"; mkdir -p "$spill"

run_verify -v --mem-budget "$MEM" --spill-dir "$spill_base" \
  > "$tmp/spill-baseline.out" 2>/dev/null
spill_base_code=$?

if ! grep -q "spilled-runs=" "$tmp/spill-baseline.out"; then
  echo "FAIL: spilling baseline wrote no runs (budget too generous?)" >&2
  fails=$((fails + 1))
fi
if grep -q "degraded-at=" "$tmp/spill-baseline.out"; then
  echo "FAIL: spilling baseline degraded — spill should prevent that" >&2
  fails=$((fails + 1))
fi

run_verify -v --mem-budget "$MEM" --spill-dir "$spill" \
  --checkpoint "$tmp/ck-spill.snap" --checkpoint-every 200 \
  > /dev/null 2>&1 &
pid=$!
# Kill only once at least one run file has been spilled and a checkpoint
# exists: the kill lands mid-spill, the worst moment for the store.
for _ in $(seq 1 600); do
  if ls "$spill"/run-*.spill >/dev/null 2>&1 && [ -s "$tmp/ck-spill.snap" ]; then
    break
  fi
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.05
done
if ! kill -0 "$pid" 2>/dev/null; then
  echo "note: spilling verify finished before SIGKILL; resuming from the final checkpoint" >&2
else
  kill -9 "$pid" 2>/dev/null
fi
wait "$pid" 2>/dev/null

if [ ! -s "$tmp/ck-spill.snap" ]; then
  echo "FAIL: no checkpoint on disk after the mid-spill kill" >&2
  exit 1
fi

run_verify -v --mem-budget "$MEM" --spill-dir "$spill" \
  --resume "$tmp/ck-spill.snap" > "$tmp/spill-resumed.out" 2>/dev/null
spill_resumed_code=$?

if [ "$spill_resumed_code" -ne "$spill_base_code" ]; then
  echo "FAIL: spill-resumed exit $spill_resumed_code, uninterrupted exit $spill_base_code" >&2
  fails=$((fails + 1))
fi
if ! cmp -s "$tmp/spill-baseline.out" "$tmp/spill-resumed.out"; then
  echo "FAIL: spill-resumed report differs from the uninterrupted run:" >&2
  diff "$tmp/spill-baseline.out" "$tmp/spill-resumed.out" >&2
  fails=$((fails + 1))
fi

if [ "$fails" -ne 0 ]; then
  # Keep the checkpoint around for the CI artifact upload.
  if [ -n "${RESILIENCE_ARTIFACT_DIR:-}" ]; then
    mkdir -p "$RESILIENCE_ARTIFACT_DIR"
    cp "$tmp/ck.snap" "$RESILIENCE_ARTIFACT_DIR/" 2>/dev/null
    cp "$tmp/ck.snap.prev" "$RESILIENCE_ARTIFACT_DIR/" 2>/dev/null
    cp "$tmp"/*.out "$RESILIENCE_ARTIFACT_DIR/" 2>/dev/null
  fi
  echo "$fails kill-9 resume check(s) failed" >&2
  exit 1
fi
echo "resilience kill-9 round trip: ok"
