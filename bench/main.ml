(* Benchmark harness.

     dune exec bench/main.exe            -- all experiments + timing benches
     dune exec bench/main.exe -- fig1    -- one experiment
     dune exec bench/main.exe -- bechamel
     dune exec bench/main.exe -- json    -- write BENCH_<date>.json

   Experiments (see EXPERIMENTS.md):
     fig1 fig2 fig3 sec6-def1 sec6-spin sweep appendix ablate degrade

   The bechamel section times the analysis algorithms themselves (one
   Test.make per core computation), which matters for anyone scaling the
   tools to bigger tests. *)

open Bechamel
open Toolkit

let prog_of name = (Option.get (Litmus_classics.find name)).Litmus_classics.prog

let timing_tests =
  let dekker = prog_of "dekker" in
  let iriw = prog_of "iriw" in
  let mp_sync = prog_of "mp_sync" in
  let lock_mutex = prog_of "lock_mutex" in
  let handoff = Workload.fig3_handoff () in
  let locks = Workload.critical_sections () in
  [
    Test.make ~name:"sc-enumerate/dekker"
      (Staged.stage (fun () -> ignore (Sc.outcomes dekker)));
    Test.make ~name:"sc-enumerate/iriw"
      (Staged.stage (fun () -> ignore (Sc.outcomes iriw)));
    Test.make ~name:"drf0-check/mp_sync"
      (Staged.stage (fun () -> ignore (Drf.obeys mp_sync)));
    Test.make ~name:"drf0-check/lock_mutex"
      (Staged.stage (fun () -> ignore (Drf.obeys lock_mutex)));
    Test.make ~name:"machine-def2/dekker"
      (Staged.stage (fun () -> ignore (Machines.outcomes Machines.def2 dekker)));
    Test.make ~name:"machine-wbuf/dekker"
      (Staged.stage (fun () -> ignore (Machines.outcomes Machines.wbuf dekker)));
    Test.make ~name:"axiomatic-sc/dekker"
      (Staged.stage (fun () -> ignore (Models.outcomes Models.sc dekker)));
    Test.make ~name:"sim-fig3/def2"
      (Staged.stage (fun () -> ignore (Sim_run.run Cpu.Def2 handoff)));
    (let obs = Obs.create () in
     Test.make ~name:"sim-fig3/def2-traced"
       (Staged.stage (fun () -> ignore (Sim_run.run ~obs Cpu.Def2 handoff))));
    Test.make ~name:"sim-locks/def2"
      (Staged.stage (fun () -> ignore (Sim_run.run Cpu.Def2 locks)));
  ]

let run_bechamel () =
  Fmt.pr "@.==== timing the analyses themselves (bechamel) ====@.@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let grouped = Test.make_grouped ~name:"weakord" ~fmt:"%s %s" timing_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Fmt.pr "%-28s %12.1f ns/run@." name est
      | Some _ | None -> Fmt.pr "%-28s (no estimate)@." name)
    clock

(* --- machine-readable bench dump --------------------------------------------

   [json] measures the exploration engine itself — wall time, states
   expanded, outcome count — over the litmus corpus x machines x domain
   counts, plus the SC enumerator with the partial-order reduction on and
   off and one larger generated workload, and writes the result to
   BENCH_<date>.json so runs are comparable across commits.  Wall-clock
   timing, not bechamel: the point is one attributable number per
   configuration, including telemetry bechamel cannot see. *)

(* Entries come in four kinds, each with an honest field set (the
   renderer below emits only the fields that mean something for the
   kind — no more states_expanded doubling as "events recorded"):

     explore   an engine sweep: states, outcomes, throughput, reduction
               and symmetry telemetry
     sym       a symmetry differential: the same sweep with the
               reduction off and on, plus the outcome-set equality check
     overhead  an instrumented-vs-idle pair: wall time, the payload the
               run processed, and the on-row's overhead percentage
     cache     batch verdict-cache traffic
     service   the differential fuzzer behind weakord fuzz/serve:
               programs, oracle checks, disagreements (gated to zero)
               and the states/s throughput headline *)
type json_entry = {
  e_kind : string;
  e_name : string;
  e_machine : string;
  e_domains : int;
  e_wall_ms : float;
  e_states : int;
  e_outcomes : int;
  e_states_per_sec : int;
      (* throughput, so trajectory files capture speed per state, not just
         wall time *)
  e_suppressed : int;
      (* transitions the partial-order reduction suppressed (0 where no
         reduction applies) *)
  e_sym_group : int;  (* automorphism-group order the sweep used *)
  e_sym_hits : int;
  e_states_nosym : int;  (* sym rows: the reduction-off state count *)
  e_reduction_pct : float;
  e_outcomes_equal : bool;  (* sym rows: differential validity check *)
  e_payload : int;  (* overhead rows: units of work the run processed *)
  e_overhead_pct : float option;  (* overhead rows: on-vs-idle, on rows *)
  e_cache_hits : int;
  e_cache_misses : int;
      (* verdict-cache traffic (0 outside the batch-cache entries) *)
  e_programs : int;  (* service rows: seeds checked *)
  e_checks : int;  (* service rows: oracle comparisons *)
  e_disagreements : int;  (* service rows: must be 0 (gated) *)
  e_total_cycles : int;  (* sim rows: simulated completion time *)
  e_finals_crc : int;  (* sim rows: crc32 of the settled memory image *)
  e_stalls_crc : int;  (* sim rows: crc32 of the stall-attribution table *)
}

let entry_default =
  {
    e_kind = "explore";
    e_name = "";
    e_machine = "";
    e_domains = 1;
    e_wall_ms = 0.;
    e_states = 0;
    e_outcomes = 0;
    e_states_per_sec = 0;
    e_suppressed = 0;
    e_sym_group = 1;
    e_sym_hits = 0;
    e_states_nosym = 0;
    e_reduction_pct = 0.;
    e_outcomes_equal = true;
    e_payload = 0;
    e_overhead_pct = None;
    e_cache_hits = 0;
    e_cache_misses = 0;
    e_programs = 0;
    e_checks = 0;
    e_disagreements = 0;
    e_total_cycles = 0;
    e_finals_crc = 0;
    e_stalls_crc = 0;
  }

let per_sec states ms = if ms <= 0. then 0 else
  int_of_float (float_of_int states /. ms *. 1000.)

(* Single-shot wall time.  The major collection first keeps entries
   independent: without it, an entry is randomly charged for the GC debt
   of whatever ran before it, which on sub-millisecond sweeps dwarfs the
   work being measured. *)
let wall f =
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let json_corpus = [ "dekker"; "dekker_sync"; "iriw"; "mp_sync"; "lock_mutex" ]
let json_domains = [ 1; 2; 4 ]

let json_machine_entries name prog m =
  List.map
    (fun domains ->
      let r, ms = wall (fun () -> Machines.explore ~domains m prog) in
      let states = r.Explore.stats.Explore.states_expanded in
      {
        entry_default with
        e_name = name;
        e_machine = Machines.name m;
        e_domains = domains;
        e_wall_ms = ms;
        e_states = states;
        e_outcomes = Final.Set.cardinal (Explore.bounded_value r.Explore.result);
        e_states_per_sec = per_sec states ms;
        e_suppressed = r.Explore.stats.Explore.suppressed;
        e_sym_group = r.Explore.stats.Explore.sym_group;
        e_sym_hits = r.Explore.stats.Explore.sym_hits;
      })
    json_domains

let json_sc_entries name prog =
  List.map
    (fun (label, reduce) ->
      let (set, states), ms = wall (fun () -> Sc.explore ~reduce prog) in
      {
        entry_default with
        e_name = name;
        e_machine = label;
        e_wall_ms = ms;
        e_states = states;
        e_outcomes = Final.Set.cardinal set;
        e_states_per_sec = per_sec states ms;
      })
    [ ("sc", true); ("sc-nopor", false) ]

(* Tracing overhead on the hottest instrumented path (a full fig3
   simulation): the same run with the null tracer (compiled in, idle) and
   with a live ring.  The two wall times land in the json so the "cheap
   enough to leave on" claim is checked per commit, not asserted once. *)
let json_trace_entries () =
  let reps = 500 and passes = 7 in
  (* Best-of-[passes] wall time: the minimum is the least noise-polluted
     estimate of the work itself, which is what an overhead ratio needs. *)
  let measure label obs =
    let states = ref 0 in
    let best = ref infinity in
    for _ = 1 to passes do
      let (), ms =
        wall (fun () ->
            for _ = 1 to reps do
              let w = Workload.fig3_handoff () in
              let r = Sim_run.run ?obs Cpu.Def2 w in
              states := !states + r.Sim_run.total_cycles
            done)
      in
      if ms < !best then best := ms
    done;
    ignore (match obs with Some o -> Obs.recorded o | None -> 0);
    {
      entry_default with
      e_kind = "overhead";
      e_name = "sim-fig3-trace";
      e_machine = label;
      e_wall_ms = !best /. float_of_int reps;
      e_payload = !states / (reps * passes);
          (* cycles simulated per run — the work the tracer rode along on *)
    }
  in
  (* Warm up once so neither variant pays first-touch costs. *)
  ignore (Sim_run.run Cpu.Def2 (Workload.fig3_handoff ()));
  let off = measure "obs-idle" None in
  let on = measure "obs-on" (Some (Obs.create ())) in
  let pct = (on.e_wall_ms -. off.e_wall_ms) /. off.e_wall_ms *. 100. in
  Fmt.pr "tracing overhead on sim-fig3: idle %.4f ms/run, on %.4f ms/run \
          (%+.1f%%)@."
    off.e_wall_ms on.e_wall_ms pct;
  [ off; { on with e_overhead_pct = Some pct } ]

(* Overhead of --checkpoint-every at its default interval: the same def2
   sweep with no resilience config vs. periodic CRC-framed snapshots
   atomically installed to a real file.  Best-of-[passes] per variant; the
   acceptance bar (README/EXPERIMENTS) is <= 5% at the default interval,
   and the json carries both walls so every commit re-checks it instead
   of trusting the claim. *)
let json_checkpoint_entries () =
  let passes = 7 in
  let path = Filename.temp_file "weakord_bench" ".snap" in
  let measure tname prog ~reps label rcfg =
    let states = ref 0 in
    let best = ref infinity in
    for _ = 1 to passes do
      let (), ms =
        wall (fun () ->
            for _ = 1 to reps do
              let r = Machines.explore ?rcfg Machines.def2 prog in
              states := r.Explore.stats.Explore.states_expanded
            done)
      in
      if ms < !best then best := ms
    done;
    {
      entry_default with
      e_kind = "overhead";
      e_name = tname ^ "-ckpt";
      e_machine = label;
      e_wall_ms = !best /. float_of_int reps;
      e_payload = !states;
          (* states expanded per run — the work each snapshot pass covered *)
    }
  in
  let ckpt_rcfg =
    {
      Explore.rcfg_default with
      Explore.snapshot_sink = Some (fun bytes -> Snapshot.write_file path bytes);
    }
  in
  let entries =
    List.concat_map
      (fun (tname, prog, reps) ->
        ignore (Machines.explore Machines.def2 prog);
        let off = measure tname prog ~reps "ckpt-off" None in
        let on = measure tname prog ~reps "ckpt-on" (Some ckpt_rcfg) in
        let pct = (on.e_wall_ms -. off.e_wall_ms) /. off.e_wall_ms *. 100. in
        Fmt.pr
          "checkpoint overhead on %s/def2 (every %d states): off %.4f \
           ms/run, on %.4f ms/run (%+.1f%%)@."
          tname Explore.checkpoint_every_default off.e_wall_ms on.e_wall_ms
          pct;
        [ off; { on with e_overhead_pct = Some pct } ])
      [
        ("dekker", prog_of "dekker", 200);
        ("big3", prog_of "big3", 3);
      ]
  in
  (try Sys.remove path with Sys_error _ -> ());
  (try Sys.remove (Snapshot.prev_path path) with Sys_error _ -> ());
  entries

(* Batch verdict-cache throughput: the same generated corpus pushed
   through the batch worker twice against one persistent cache file — a
   cold pass (every verdict computed and appended) and a warm pass (every
   verdict served from the reloaded cache).  In-process, sequential, no
   forking: the entry isolates the cache layer, and the hit/miss counters
   land in the json so a regression in the cache key (canonicalization,
   engine-version handling) shows up as a miss storm, not a mystery
   slowdown. *)
let json_batch_entries () =
  let seeds = 30 in
  let progs =
    List.of_seq
      (Seq.map snd (Litmus_gen.seed_range ~lo:0 ~hi:(seeds - 1) ()))
  in
  let machine = Option.get (Machines.find "def2") in
  let path = Filename.temp_file "weakord_bench" ".wovc" in
  Sys.remove path;
  let pass label =
    let cache = Verdict_cache.open_file path in
    let states = ref 0 in
    let (), ms =
      wall (fun () ->
          List.iter
            (fun prog ->
              let key = Verdict_cache.key ~prog ~machine:"def2" ~model:"drf0" in
              match Verdict_cache.find cache key with
              | Some v -> states := !states + v.Verdict_cache.v_states
              | None -> (
                  match Worker.run ~model:Worker.Drf0 ~machine prog with
                  | Ok v ->
                      Verdict_cache.add cache key v;
                      states := !states + v.Verdict_cache.v_states
                  | Error `Cancelled -> ()))
            progs)
    in
    let s = Verdict_cache.stats cache in
    Verdict_cache.close cache;
    {
      entry_default with
      e_kind = "cache";
      e_name = "batch-cache";
      e_machine = label;
      e_wall_ms = ms;
      e_states = !states;
      e_outcomes = seeds;
      e_states_per_sec = per_sec !states ms;
      e_cache_hits = s.Verdict_cache.hits;
      e_cache_misses = s.Verdict_cache.misses;
    }
  in
  let cold = pass "cache-cold" in
  let warm = pass "cache-warm" in
  Fmt.pr
    "batch verdict cache over %d seeds: cold %.1f ms (%d misses), warm %.1f \
     ms (%d hits)@."
    seeds cold.e_wall_ms cold.e_cache_misses warm.e_wall_ms warm.e_cache_hits;
  (try Sys.remove path with Sys_error _ -> ());
  [ cold; warm ]

(* Differential-fuzzer throughput: the oracle pipeline behind
   [weakord fuzz] (and the per-job pipeline [weakord serve] multiplexes)
   over a fixed seed range, with and without the simulator leg.  The
   state count is deterministic per (range, flags) so the gate treats it
   like any exploration row, and the disagreement count rides along so a
   soundness break in any engine fails the bench gate, not just the
   (slower) nightly fuzz campaign. *)
let json_service_entries () =
  let row label sim lo hi =
    let cfg = { Fuzz.default_cfg with Fuzz.sim; sim_limit = 100_000 } in
    let s, ms = wall (fun () -> Fuzz.run cfg ~lo ~hi) in
    Fmt.pr
      "fuzz oracle (%s) over seeds %d..%d: %d checks, %d disagreements, %.1f \
       ms, %d states/s@."
      label lo hi s.Fuzz.checks
      (List.length s.Fuzz.disagreements)
      ms
      (per_sec s.Fuzz.states_total ms);
    {
      entry_default with
      e_kind = "service";
      e_name = "fuzz-oracle";
      e_machine = label;
      e_wall_ms = ms;
      e_states = s.Fuzz.states_total;
      e_states_per_sec = per_sec s.Fuzz.states_total ms;
      e_programs = s.Fuzz.programs;
      e_checks = s.Fuzz.checks;
      e_disagreements = List.length s.Fuzz.disagreements;
    }
  in
  [ row "oracle-sim" true 0 19; row "oracle-nosim" false 0 49 ]

(* The sharded fleet behind [weakord fleet]: the same oracle driven
   through the full supervisor pipeline — forked shard workers,
   heartbeats, result framing, merge accounting.  States and check
   counts are deterministic per (range, flags) so the row gates like any
   service row, and poison seeds count as disagreements (a clean corpus
   must quarantine nothing).  Must run before any exploration row:
   forking is only reliable while no domain has ever been spawned in
   this process. *)
let json_fleet_entries () =
  let cfg =
    {
      Fleet.default_cfg with
      Fleet.oracle = { Fuzz.default_cfg with Fuzz.sim_limit = 100_000 };
      shards = 4;
      unit_seeds = 10;
    }
  in
  let s, ms = wall (fun () -> Fleet.run cfg ~lo:0 ~hi:39) in
  Fmt.pr
    "fleet (4 shards, 10-seed units) over seeds 0..39: %d checks, %d \
     disagreements, %d poison, %.1f ms, %d states/s@."
    s.Fleet.f_checks s.Fleet.f_disagreements s.Fleet.f_poison_total ms
    (per_sec s.Fleet.f_states ms);
  [
    {
      entry_default with
      e_kind = "service";
      e_name = "fleet";
      e_machine = "4-shards";
      e_domains = 4;
      e_wall_ms = ms;
      e_states = s.Fleet.f_states;
      e_states_per_sec = per_sec s.Fleet.f_states ms;
      e_programs = s.Fleet.f_programs;
      e_checks = s.Fleet.f_checks;
      e_disagreements = s.Fleet.f_disagreements + s.Fleet.f_poison_total;
    };
  ]

(* Symmetry-reduction differential: the same sweep with the orbit
   reduction off and on.  Two numbers matter per row: the state-count
   reduction (the point of the feature) and the outcome-set equality
   check (its soundness probe — the reduction may change how many states
   are visited, never which outcomes exist).  bench_gate.py requires at
   least one row per program at >= 30% reduction with equal outcomes, so
   both claims are re-verified on every commit. *)
let json_sym_entries () =
  List.concat_map
    (fun name ->
      let prog = prog_of name in
      List.map
        (fun m ->
          let nosym, _ =
            wall (fun () ->
                Machines.explore
                  ~rcfg:{ Explore.rcfg_default with Explore.sym = false }
                  m prog)
          in
          let symr, ms = wall (fun () -> Machines.explore m prog) in
          let off = nosym.Explore.stats.Explore.states_expanded in
          let on = symr.Explore.stats.Explore.states_expanded in
          let equal =
            Final.Set.equal
              (Explore.bounded_value nosym.Explore.result)
              (Explore.bounded_value symr.Explore.result)
          in
          let pct =
            if off = 0 then 0.
            else float_of_int (off - on) /. float_of_int off *. 100.
          in
          Fmt.pr
            "symmetry on %s/%s: %d -> %d states (-%.1f%%, group %d, \
             outcomes %s)@."
            name (Machines.name m) off on pct
            symr.Explore.stats.Explore.sym_group
            (if equal then "equal" else "DIFFER");
          {
            entry_default with
            e_kind = "sym";
            e_name = name;
            e_machine = Machines.name m;
            e_wall_ms = ms;
            e_states = on;
            e_states_nosym = off;
            e_reduction_pct = pct;
            e_sym_group = symr.Explore.stats.Explore.sym_group;
            e_sym_hits = symr.Explore.stats.Explore.sym_hits;
            e_outcomes =
              Final.Set.cardinal (Explore.bounded_value symr.Explore.result);
            e_outcomes_equal = equal;
            e_states_per_sec = per_sec on ms;
          })
        [ Machines.def2; Machines.ooo ])
    [ "iriw"; "big3" ]

(* Timing-simulator scale rows: the spin-heavy workloads at 8..64 cores
   under both definitions in the shipping engine configuration (heap
   queue, batching, spin parking), plus one naive reference row per
   definition — pipeline at 64 cores with parking and batching off — for
   the events-shed ratio the gate enforces.  The settled memory image and
   the stall-attribution table are pinned by CRC: simulation is
   deterministic, so a sim row whose crc or total_cycles moves without a
   deliberate baseline refresh is a timing regression, not noise.
   Sanitizer off: these rows measure the engine, not the checker. *)
let sim_workloads =
  [
    ("locks", fun nprocs -> Workload.critical_sections ~nprocs ());
    ("ticket", fun nprocs -> Workload.ticket_lock ~nprocs ());
    ("sense", fun nprocs -> Workload.sense_barrier ~nprocs ());
    ("pipeline", fun nprocs -> Workload.pipeline ~nprocs ());
  ]

let json_sim_entries () =
  let finals_crc finals =
    Crc32.digest
      (String.concat ";"
         (List.map (fun (l, v) -> Printf.sprintf "%s=%d" l v) finals))
  in
  let stalls_crc stalls =
    Crc32.digest
      (String.concat ";"
         (List.map
            (fun (p, cause, loc, c) -> Printf.sprintf "%d,%s,%s,%d" p cause loc c)
            (Obs.Stall.rows stalls)))
  in
  let row name gen policy label ~nprocs ~naive =
    let cfg =
      Sim_config.make ~sanitize:false ~park_spins:(not naive)
        ~batch_events:(not naive) ()
    in
    let r, ms = wall (fun () -> Sim_run.run ~cfg policy (gen nprocs)) in
    Fmt.pr "sim %-9s %-12s n=%-3d %8d events %7d cycles %8.1f ms@." name label
      nprocs r.Sim_run.events r.Sim_run.total_cycles ms;
    {
      entry_default with
      e_kind = "sim";
      e_name = name;
      e_machine = label;
      e_domains = nprocs;
      e_wall_ms = ms;
      e_states = r.Sim_run.events;
      e_states_per_sec = per_sec r.Sim_run.events ms;
      e_total_cycles = r.Sim_run.total_cycles;
      e_finals_crc = finals_crc r.Sim_run.finals;
      e_stalls_crc = stalls_crc r.Sim_run.stalls;
    }
  in
  let policies = [ (Cpu.Def1, "def1"); (Cpu.Def2_rs, "def2-rs") ] in
  List.concat_map
    (fun (name, gen) ->
      List.concat_map
        (fun (policy, label) ->
          List.map
            (fun nprocs -> row name gen policy label ~nprocs ~naive:false)
            [ 8; 16; 32; 64 ])
        policies)
    sim_workloads
  @ List.map
      (fun (policy, label) ->
        row "pipeline"
          (fun nprocs -> Workload.pipeline ~nprocs ())
          policy (label ^ "-naive") ~nprocs:64 ~naive:true)
      policies

let write_json ?out entries =
  let tm = Unix.localtime (Unix.time ()) in
  let date =
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
  in
  let file =
    match out with
    | Some f -> f
    | None -> Printf.sprintf "BENCH_%s.json" date
  in
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\n  \"date\": %S,\n  \"cores\": %d,\n  \"entries\": [\n"
    date
    (Domain.recommended_domain_count ());
  (* Per-kind rendering: every row carries only fields that mean
     something for its kind, so the gate (and any reader) never has to
     guess whether states_expanded is really a state count. *)
  let render e =
    let common =
      Printf.sprintf
        "\"name\": %S, \"machine\": %S, \"kind\": %S, \"domains\": %d, \
         \"wall_ms\": %.3f"
        e.e_name e.e_machine e.e_kind e.e_domains e.e_wall_ms
    in
    match e.e_kind with
    | "overhead" ->
        Printf.sprintf "{%s, \"payload\": %d, \"overhead_pct\": %s}" common
          e.e_payload
          (match e.e_overhead_pct with
          | Some p -> Printf.sprintf "%.2f" p
          | None -> "null")
    | "sym" ->
        Printf.sprintf
          "{%s, \"states_expanded\": %d, \"states_nosym\": %d, \
           \"reduction_pct\": %.1f, \"sym_group\": %d, \"sym_hits\": %d, \
           \"outcomes\": %d, \"outcomes_equal\": %s, \"states_per_sec\": %d}"
          common e.e_states e.e_states_nosym e.e_reduction_pct e.e_sym_group
          e.e_sym_hits e.e_outcomes
          (if e.e_outcomes_equal then "true" else "false")
          e.e_states_per_sec
    | "service" ->
        Printf.sprintf
          "{%s, \"states_expanded\": %d, \"programs\": %d, \"checks\": %d, \
           \"disagreements\": %d, \"states_per_sec\": %d}"
          common e.e_states e.e_programs e.e_checks e.e_disagreements
          e.e_states_per_sec
    | "cache" ->
        Printf.sprintf
          "{%s, \"states_expanded\": %d, \"outcomes\": %d, \
           \"states_per_sec\": %d, \"cache_hits\": %d, \"cache_misses\": %d}"
          common e.e_states e.e_outcomes e.e_states_per_sec e.e_cache_hits
          e.e_cache_misses
    | "sim" ->
        Printf.sprintf
          "{%s, \"events\": %d, \"events_per_sec\": %d, \"total_cycles\": %d, \
           \"finals_crc\": %d, \"stalls_crc\": %d}"
          common e.e_states e.e_states_per_sec e.e_total_cycles e.e_finals_crc
          e.e_stalls_crc
    | _ ->
        Printf.sprintf
          "{%s, \"states_expanded\": %d, \"outcomes\": %d, \
           \"states_per_sec\": %d, \"suppressed_transitions\": %d, \
           \"sym_group\": %d, \"sym_hits\": %d}"
          common e.e_states e.e_outcomes e.e_states_per_sec e.e_suppressed
          e.e_sym_group e.e_sym_hits
  in
  List.iteri
    (fun i e ->
      Printf.bprintf b "    %s%s\n" (render e)
        (if i = List.length entries - 1 then "" else ","))
    entries;
  Buffer.add_string b "  ]\n}\n";
  (* Atomic install: a bench run killed mid-dump never leaves a truncated
     json for the comparison tooling to choke on. *)
  Atomic_io.write_file file (Buffer.contents b);
  Fmt.pr "wrote %s (%d entries)@." file (List.length entries)

let run_json ?out () =
  (* Fleet first: it forks shard workers, and fork is only reliable
     before the exploration rows below spawn any domain. *)
  let fleet_entries = json_fleet_entries () in
  let entries =
    List.concat_map
      (fun tname ->
        let prog = prog_of tname in
        List.concat_map
          (json_machine_entries tname prog)
          [ Machines.def2; Machines.wbuf; Machines.ooo ]
        @ json_sc_entries tname prog)
      json_corpus
    @
    let prog = prog_of "big3" in
    List.concat_map
      (json_machine_entries "big3" prog)
      [ Machines.def2; Machines.wbuf; Machines.ooo ]
    @ json_sc_entries "big3" prog @ json_sym_entries ()
    @ json_trace_entries () @ json_checkpoint_entries ()
    @ json_batch_entries () @ json_service_entries () @ fleet_entries
    @ json_sim_entries ()
  in
  write_json ?out entries

(* Only the timing-simulator rows: fast enough for a dedicated CI job
   (`bench_gate.py --kinds sim` against the committed baseline). *)
let run_json_sim ?out () = write_json ?out (json_sim_entries ())

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
      Experiments.all ();
      run_bechamel ()
  | [ "fig1" ] -> Experiments.fig1 ()
  | [ "fig2" ] -> Experiments.fig2 ()
  | [ "fig3" ] -> Experiments.fig3 ()
  | [ "sec6-def1" ] -> Experiments.sec6_def1 ()
  | [ "sec6-spin" ] -> Experiments.sec6_spin ()
  | [ "sweep" ] -> Experiments.sweep ()
  | [ "appendix" ] -> Experiments.appendix ()
  | [ "ablate" ] -> Experiments.ablate ()
  | [ "degrade" ] -> Experiments.degrade ()
  | [ "bechamel" ] -> run_bechamel ()
  | [ "json" ] -> run_json ()
  | [ "json"; "-o"; file ] -> run_json ~out:file ()
  | [ "json-sim" ] -> run_json_sim ()
  | [ "json-sim"; "-o"; file ] -> run_json_sim ~out:file ()
  | _ ->
      prerr_endline
        "usage: main.exe \
         [fig1|fig2|fig3|sec6-def1|sec6-spin|sweep|appendix|ablate|degrade|\
         bechamel|json [-o FILE]|json-sim [-o FILE]]";
      exit 2
