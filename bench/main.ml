(* Benchmark harness.

     dune exec bench/main.exe            -- all experiments + timing benches
     dune exec bench/main.exe -- fig1    -- one experiment
     dune exec bench/main.exe -- bechamel

   Experiments (see EXPERIMENTS.md):
     fig1 fig2 fig3 sec6-def1 sec6-spin sweep appendix ablate degrade

   The bechamel section times the analysis algorithms themselves (one
   Test.make per core computation), which matters for anyone scaling the
   tools to bigger tests. *)

open Bechamel
open Toolkit

let prog_of name = (Option.get (Litmus_classics.find name)).Litmus_classics.prog

let timing_tests =
  let dekker = prog_of "dekker" in
  let iriw = prog_of "iriw" in
  let mp_sync = prog_of "mp_sync" in
  let lock_mutex = prog_of "lock_mutex" in
  let handoff = Workload.fig3_handoff () in
  let locks = Workload.critical_sections () in
  [
    Test.make ~name:"sc-enumerate/dekker"
      (Staged.stage (fun () -> ignore (Sc.outcomes dekker)));
    Test.make ~name:"sc-enumerate/iriw"
      (Staged.stage (fun () -> ignore (Sc.outcomes iriw)));
    Test.make ~name:"drf0-check/mp_sync"
      (Staged.stage (fun () -> ignore (Drf.obeys mp_sync)));
    Test.make ~name:"drf0-check/lock_mutex"
      (Staged.stage (fun () -> ignore (Drf.obeys lock_mutex)));
    Test.make ~name:"machine-def2/dekker"
      (Staged.stage (fun () -> ignore (Machines.outcomes Machines.def2 dekker)));
    Test.make ~name:"machine-wbuf/dekker"
      (Staged.stage (fun () -> ignore (Machines.outcomes Machines.wbuf dekker)));
    Test.make ~name:"axiomatic-sc/dekker"
      (Staged.stage (fun () -> ignore (Models.outcomes Models.sc dekker)));
    Test.make ~name:"sim-fig3/def2"
      (Staged.stage (fun () -> ignore (Sim_run.run Cpu.Def2 handoff)));
    Test.make ~name:"sim-locks/def2"
      (Staged.stage (fun () -> ignore (Sim_run.run Cpu.Def2 locks)));
  ]

let run_bechamel () =
  Fmt.pr "@.==== timing the analyses themselves (bechamel) ====@.@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let grouped = Test.make_grouped ~name:"weakord" ~fmt:"%s %s" timing_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Fmt.pr "%-28s %12.1f ns/run@." name est
      | Some _ | None -> Fmt.pr "%-28s (no estimate)@." name)
    clock

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
      Experiments.all ();
      run_bechamel ()
  | [ "fig1" ] -> Experiments.fig1 ()
  | [ "fig2" ] -> Experiments.fig2 ()
  | [ "fig3" ] -> Experiments.fig3 ()
  | [ "sec6-def1" ] -> Experiments.sec6_def1 ()
  | [ "sec6-spin" ] -> Experiments.sec6_spin ()
  | [ "sweep" ] -> Experiments.sweep ()
  | [ "appendix" ] -> Experiments.appendix ()
  | [ "ablate" ] -> Experiments.ablate ()
  | [ "degrade" ] -> Experiments.degrade ()
  | [ "bechamel" ] -> run_bechamel ()
  | _ ->
      prerr_endline
        "usage: main.exe \
         [fig1|fig2|fig3|sec6-def1|sec6-spin|sweep|appendix|ablate|degrade|bechamel]";
      exit 2
