(* The per-figure experiments of EXPERIMENTS.md.  Each function prints the
   rows/series the corresponding figure or claim rests on; the shape (who
   wins, who violates, where stalls land) is what reproduces the paper. *)

let corpus = List.map (fun e -> e.Litmus_classics.prog) Litmus_classics.all

let hr title =
  Fmt.pr "@.==== %s ====@.@." title

(* --- E1: Figure 1 ----------------------------------------------------------- *)

(* Figure 1's claim: the Dekker outcome (both processors see 0 and kill each
   other) is impossible under SC but possible on all four relaxed hardware
   configurations.  The bus configurations fail through write buffers
   (reads passing buffered writes); the network configurations fail through
   accesses completing out of order.  Caches do not restore order on their
   own — the same machines model the cached variants, because a coherence
   protocol constrains same-location orders only. *)
let fig1 () =
  hr "E1 / Figure 1: the sequential-consistency violation";
  let prog = Litmus_classics.dekker.Litmus_classics.prog in
  Fmt.pr "%a@.@." Prog.pp prog;
  let verdict m =
    match Machines.allows_exists m prog with
    | Some true -> "VIOLATION possible"
    | Some false -> "forbidden"
    | None -> "?"
  in
  Fmt.pr "%-44s %-9s %s@." "configuration" "machine" "both killed (r0=r1=0)?";
  List.iter
    (fun (config, m) -> Fmt.pr "%-44s %-9s %s@." config (Machines.name m) (verdict m))
    [
      ("sequentially consistent reference", Machines.sc);
      ("shared bus, no caches (write buffers)", Machines.wbuf);
      ("general network, no caches (reordering)", Machines.ooo);
      ("shared bus + coherent caches (write buffers)", Machines.wbuf);
      ("general network + coherent caches", Machines.ooo);
    ];
  Fmt.pr
    "@.Coherence alone does not forbid it either (axiomatic check): %s@."
    (if Option.get (Models.allows_exists Models.coherence_only prog) then
       "coherence-only model allows the violation"
     else "unexpectedly forbidden");
  Fmt.pr
    "Even the all-sync Dekker breaks on naive hardware (motivating visible \
     synchronization):@.";
  let sync_prog = Litmus_classics.dekker_sync.Litmus_classics.prog in
  List.iter
    (fun m ->
      Fmt.pr "  %-9s %s@." (Machines.name m)
        (match Machines.allows_exists m sync_prog with
        | Some true -> "still violated"
        | Some false -> "forbidden"
        | None -> "?"))
    [ Machines.wbuf; Machines.ooo; Machines.def1; Machines.def2 ];
  Fmt.pr
    "@.The software alternative (Section 2.1, Shasha & Snir): enforce the      delay set.@.Dekker needs %d delays; with fences inserted, even the      naive machines are SC:@.  wbuf appears SC: %b   ooo appears SC: %b@."
    (Delay_set.delay_count prog)
    (Machines.appears_sc Machines.wbuf (Delay_set.with_fences prog))
    (Machines.appears_sc Machines.ooo (Delay_set.with_fences prog))

(* --- E2: Figure 2 ----------------------------------------------------------- *)

let fig2 () =
  hr "E2 / Figure 2: executions for and against DRF0";
  let analyze prog expected =
    Fmt.pr "%a@.@." Prog.pp prog;
    let evts = Evts.of_prog prog in
    let races_in_some_trace = ref false in
    let traces = ref 0 in
    Sc.iter_traces prog (fun trace _ ->
        incr traces;
        if Drf.races_of_trace evts trace <> [] then races_in_some_trace := true);
    Fmt.pr "idealized executions examined: %d@." !traces;
    Fmt.pr "program-level verdict: %s (expected %s)@."
      (if Drf.obeys prog then "obeys DRF0" else "violates DRF0")
      expected;
    (match Drf.check prog with
    | Ok () -> ()
    | Error races ->
        let unique =
          List.sort_uniq
            (fun a b ->
              compare
                (a.Drf.e1.Event.id, a.Drf.e2.Event.id)
                (b.Drf.e1.Event.id, b.Drf.e2.Event.id))
            races
        in
        Fmt.pr "unordered conflicting accesses:@.";
        List.iter
          (fun r -> Fmt.pr "  %a vs %a@." Event.pp r.Drf.e1 Event.pp r.Drf.e2)
          unique);
    Fmt.pr "per-execution races found in some trace: %b@.@."
      !races_in_some_trace
  in
  analyze Litmus_classics.fig2a_execution "obeys (Figure 2a)";
  analyze Litmus_classics.fig2b_execution "violates (Figure 2b)"

(* --- E3: Figure 3 ----------------------------------------------------------- *)

let fig3 () =
  hr "E3 / Figure 3: where the implementations stall";
  let w = Workload.fig3_handoff () in
  Fmt.pr
    "P0: W(x); ...; Unset(s); ...    P1: TestAndSet(s); ...; R(x)@.\
     (the write of x takes a long time to perform globally)@.@.";
  Fmt.pr "%-8s %14s %14s %12s %12s %8s@." "policy" "P0 sync stall"
    "P0 finish" "P1 acquire" "P1 finish" "defer";
  List.iter
    (fun policy ->
      let r = Sim_run.run policy w in
      let p0 = r.Sim_run.proc_stats.(0) in
      let p1 = r.Sim_run.proc_stats.(1) in
      Fmt.pr "%-8s %14d %14d %12d %12d %8d@." (Cpu.policy_name policy)
        (p0.Cpu.stall_pre_sync + p0.Cpu.stall_sync_gp)
        p0.Cpu.finish
        (p1.Cpu.stall_acquire + p1.Cpu.stall_sync_gp + p1.Cpu.stall_pre_sync)
        p1.Cpu.finish r.Sim_run.deferrals)
    Cpu.all_policies;
  Fmt.pr
    "@.Paper's claim: \"Def. 1 stalls P0 ... Def. 2 w.r.t. DRF0 need never \
     stall P0 ... Both stall P1.\"@.\
     Above: def1 shows a positive P0 sync stall; def2 shows zero, finishes \
     P0 earlier,@.and shifts the wait to P1 via a reservation (defer > 0).@.";
  (* The same claim, read off the per-cause stall-attribution table the
     simulator keeps always on: def1 charges P0 ordering stalls at the
     Unset (draining its counter, then waiting for global performance);
     def2 charges P0 nothing there — the wait reappears on P1 as a
     reserve-bit deferral. *)
  Fmt.pr "@.Per-cause stall attribution (cycles, by processor/cause/location):@.";
  List.iter
    (fun policy ->
      let r = Sim_run.run policy w in
      Fmt.pr "@.%s:@.%a@." (Cpu.policy_name policy) Obs.Stall.pp
        r.Sim_run.stalls)
    [ Cpu.Def1; Cpu.Def2 ];
  let p0_ordering policy =
    let s = (Sim_run.run policy w).Sim_run.stalls in
    Obs.Stall.get s ~tid:0 ~cause:Cpu.cause_counter ~loc:"s"
    + Obs.Stall.get s ~tid:0 ~cause:Cpu.cause_gp ~loc:"s"
  in
  Fmt.pr "@.P0 stall cycles at Unset(s): def1=%d, def2=%d@."
    (p0_ordering Cpu.Def1) (p0_ordering Cpu.Def2);
  let correct =
    List.for_all
      (fun p -> Sim_run.observation (Sim_run.run p w) "x" = Some 1)
      Cpu.all_policies
  in
  Fmt.pr "consumer read the datum correctly under every policy: %b@." correct;
  (* The figure itself is a timing diagram; render ours.  '-' spans an
     operation from generation to commit, S marks a sync commit, '!' the
     point where its global performance catches up. *)
  Fmt.pr "@.Timelines (the figure, as measured):@.@.";
  List.iter
    (fun policy ->
      let r = Sim_run.run policy w in
      Fmt.pr "%s:@.%a@." (Cpu.policy_name policy)
        (Sim_trace.pp_timeline ~width:72)
        r.Sim_run.trace)
    [ Cpu.Def1; Cpu.Def2 ]

(* --- E4: Section 6, Definition-1 hardware is weakly ordered ----------------- *)

let sec6_def1 () =
  hr "E4 / Section 6: Definition-1 hardware is weakly ordered by Definition 2";
  let report m model =
    let r = Weak_ordering.verify ~hw:(Weak_ordering.of_machine m) ~model corpus in
    Fmt.pr "  %-8s w.r.t. %-5s -> %s@." r.Weak_ordering.hardware
      r.Weak_ordering.model
      (if r.Weak_ordering.weakly_ordered then "weakly ordered"
       else
         Fmt.str "NOT weakly ordered (counterexample: %s)"
           (match Weak_ordering.counterexamples r with
           | v :: _ -> Prog.name v.Weak_ordering.program
           | [] -> "?"))
  in
  report Machines.def1 Weak_ordering.drf0;
  report Machines.def2 Weak_ordering.drf0;
  report Machines.wbuf Weak_ordering.drf0;
  report Machines.ooo Weak_ordering.drf0;
  report Machines.def2_rs Weak_ordering.drf0;
  report Machines.def2_rs Weak_ordering.drf1;
  Fmt.pr "@.and both def1 and def2 are genuinely weaker than SC: %b / %b@."
    (Weak_ordering.weaker_than_sc ~hw:(Weak_ordering.of_machine Machines.def1) corpus)
    (Weak_ordering.weaker_than_sc ~hw:(Weak_ordering.of_machine Machines.def2) corpus);
  Fmt.pr
    "@.The separating example (Section 6's barrier count spun on with data \
     reads):@.";
  let p = Litmus_classics.barrier_data_spin.Litmus_classics.prog in
  List.iter
    (fun m ->
      Fmt.pr "  %-8s %s@." (Machines.name m)
        (match Machines.allows_exists m p with
        | Some true -> "allows the stale read (not SC for this racy program)"
        | Some false -> "appears SC even though the program races"
        | None -> "?"))
    [ Machines.def1; Machines.def2 ]

(* --- E5: Section 6, serialization of read-only synchronization --------------- *)

let sec6_spin () =
  hr "E5 / Section 6: sync-read spinning serialized by the base implementation";
  Fmt.pr
    "Barrier: each processor FADDs a counter (sync) then spins until it \
     reaches N.@.@.";
  Fmt.pr "%7s | %24s | %24s@." "" "sync-read spin (cycles)" "messages";
  Fmt.pr "%7s | %7s %7s %8s | %7s %7s %8s@." "nprocs" "def1" "def2" "def2-rs"
    "def1" "def2" "def2-rs";
  List.iter
    (fun n ->
      let w = Workload.spin_barrier ~nprocs:n ~sync_spin:true () in
      let r p = Sim_run.run p w in
      let d1 = r Cpu.Def1 and d2 = r Cpu.Def2 and drs = r Cpu.Def2_rs in
      Fmt.pr "%7d | %7d %7d %8d | %7d %7d %8d@." n d1.Sim_run.total_cycles
        d2.Sim_run.total_cycles drs.Sim_run.total_cycles d1.Sim_run.messages
        d2.Sim_run.messages drs.Sim_run.messages)
    [ 2; 3; 4; 6; 8 ];
  Fmt.pr
    "@.Base def2 treats every Test as a write: exclusive ping-pong grows \
     with nprocs.@.The Section 6 refinement (def2-rs) spins on shared \
     copies, like def1.@.@.";
  Fmt.pr "For contrast, data-read spinning (the racy idiom) levels them:@.";
  List.iter
    (fun n ->
      let w = Workload.spin_barrier ~nprocs:n ~sync_spin:false () in
      let r p = (Sim_run.run p w).Sim_run.total_cycles in
      Fmt.pr "  nprocs=%d: def1=%d def2=%d def2-rs=%d@." n (r Cpu.Def1)
        (r Cpu.Def2) (r Cpu.Def2_rs))
    [ 4; 8 ]

(* --- E6: the quantitative comparison the conclusions call for ---------------- *)

let sweep () =
  hr "E6 / future work: quantitative comparison across policies";
  Fmt.pr "Lock-based critical sections (4 procs, 4 rounds), varying network \
          latency:@.@.";
  Fmt.pr "%6s %8s %8s %8s %10s %18s@." "net" "sc" "def1" "def2" "def2-rs"
    "speedup def2/sc";
  List.iter
    (fun net ->
      let cfg = Sim_config.make ~net () in
      let w = Workload.critical_sections () in
      let r p = (Sim_run.run ~cfg p w).Sim_run.total_cycles in
      let sc = r Cpu.Sc and d1 = r Cpu.Def1 and d2 = r Cpu.Def2 in
      let drs = r Cpu.Def2_rs in
      Fmt.pr "%6d %8d %8d %8d %10d %17.2fx@." net sc d1 d2 drs
        (float_of_int sc /. float_of_int d2))
    [ 5; 10; 20; 40; 80 ];
  Fmt.pr "@.Pipeline handoffs (4 stages), varying network latency:@.@.";
  Fmt.pr "%6s %8s %8s %8s %10s@." "net" "sc" "def1" "def2" "def2-rs";
  List.iter
    (fun net ->
      let cfg = Sim_config.make ~net () in
      let w = Workload.pipeline () in
      let r p = (Sim_run.run ~cfg p w).Sim_run.total_cycles in
      Fmt.pr "%6d %8d %8d %8d %10d@." net (r Cpu.Sc) (r Cpu.Def1) (r Cpu.Def2)
        (r Cpu.Def2_rs))
    [ 5; 10; 20; 40; 80 ];
  Fmt.pr "@.Ticket lock and sense-reversing barrier (4 procs):@.@.";
  Fmt.pr "%-16s %8s %8s %8s %10s@." "workload" "sc" "def1" "def2" "def2-rs";
  List.iter
    (fun (name, w) ->
      let r p = (Sim_run.run p w).Sim_run.total_cycles in
      Fmt.pr "%-16s %8d %8d %8d %10d@." name (r Cpu.Sc) (r Cpu.Def1)
        (r Cpu.Def2) (r Cpu.Def2_rs))
    [
      ("ticket_lock", Workload.ticket_lock ());
      ("sense_barrier", Workload.sense_barrier ());
      ("sense_barrier(d)", Workload.sense_barrier ~sync_spin:false ());
    ];
  Fmt.pr "@.Critical sections, varying work outside the critical section@.\
          (more private work = more overlap for the weak policies):@.@.";
  Fmt.pr "%9s %8s %8s %8s@." "work_out" "sc" "def1" "def2";
  List.iter
    (fun work_out ->
      let w = Workload.critical_sections ~work_out () in
      let r p = (Sim_run.run p w).Sim_run.total_cycles in
      Fmt.pr "%9d %8d %8d %8d@." work_out (r Cpu.Sc) (r Cpu.Def1) (r Cpu.Def2))
    [ 0; 25; 50; 100; 200 ]

(* --- E7: Appendices A and B --------------------------------------------------- *)

let appendix () =
  hr "E7 / Appendices: Lemma 1 and the sufficiency of the Section 5.1 conditions";
  Fmt.pr
    "Lemma 1: on DRF0 programs, every read returns the hb-last write.  \
     Checked on@.every candidate execution the def2 axioms accept:@.@.";
  List.iter
    (fun e ->
      let p = e.Litmus_classics.prog in
      if e.Litmus_classics.drf0 then begin
        let cands = Models.candidates Models.def2 p in
        let ok = List.for_all Lemma1.holds cands in
        Fmt.pr "  %-20s %3d candidates: %s@." (Prog.name p)
          (List.length cands)
          (if ok then "lemma holds" else "LEMMA VIOLATED")
      end)
    Litmus_classics.all;
  Fmt.pr
    "@.Sufficiency (Appendix B), operationally: the def2 machine's outcomes \
     are SC@.outcomes on every DRF0 program, and within the axioms on every \
     program:@.@.";
  List.iter
    (fun e ->
      let p = e.Litmus_classics.prog in
      let within =
        Final.Set.subset
          (Machines.outcomes Machines.def2 p)
          (Models.outcomes Models.def2 p)
      in
      let appears =
        (not e.Litmus_classics.drf0) || Machines.appears_sc Machines.def2 p
      in
      Fmt.pr "  %-20s within-axioms=%b drf0-implies-sc=%b@." (Prog.name p)
        within appears)
    Litmus_classics.all;
  Fmt.pr
    "@.And on the timing simulator: the Section 5.1 conditions checked on per-operation@.traces of real runs (0 violations expected for def2; the no-reserve ablation@.must violate condition 5):@.@.";
  let workloads =
    [
      ("fig3", Workload.fig3_handoff ());
      ("locks", Workload.critical_sections ());
      ("barrier", Workload.spin_barrier ());
      ("pipeline", Workload.pipeline ());
    ]
  in
  List.iter
    (fun (name, w) ->
      let count policy =
        let r = Sim_run.run policy w in
        List.length (Sim_trace.check_all r.Sim_run.trace)
      in
      Fmt.pr "  %-10s def2 violations=%d   def2-without-reserve violations=%d@."
        name (count Cpu.Def2) (count Cpu.Def2_noresv))
    workloads;
  let cfg = Sim_config.make ~net_jitter:30 () in
  let x policy =
    Sim_run.observation
      (Sim_run.run ~cfg policy (Workload.fig3_handoff ()))
      "x"
  in
  Fmt.pr
    "@.With network reordering (jitter 30), the missing reserve bit becomes observable:@.  consumer reads x = %s under def2, x = %s without reserve bits.@."
    (match x Cpu.Def2 with Some v -> string_of_int v | None -> "?")
    (match x Cpu.Def2_noresv with Some v -> string_of_int v | None -> "?")

(* --- ablation ------------------------------------------------------------------ *)

(* DESIGN.md's ablation: collapse commit into globally-performed (make the
   sync wait for the issuing processor's own pending writes — Definition 1's
   discipline) and the Figure 3 advantage disappears. *)
let ablate () =
  hr "Ablation: collapse commit into globally-performed";
  let w = Workload.fig3_handoff () in
  let p0_finish policy = (Sim_run.run policy w).Sim_run.proc_stats.(0).Cpu.finish in
  Fmt.pr
    "def2 separates a sync's commit from global performance; def1 is the@.\
     collapsed design.  Producer finish times:@.@.";
  Fmt.pr "  with the distinction (def2):    %d cycles@." (p0_finish Cpu.Def2);
  Fmt.pr "  collapsed (def1 discipline):    %d cycles@." (p0_finish Cpu.Def1);
  Fmt.pr "@.and at the model level, the distinction is what permits non-SC@.\
          behaviour on racy programs that def1 keeps SC:@.";
  let p = Litmus_classics.barrier_data_spin.Litmus_classics.prog in
  Fmt.pr "  barrier_data_spin stale read: def1=%b def2=%b@."
    (Option.get (Machines.allows_exists Machines.def1 p))
    (Option.get (Machines.allows_exists Machines.def2 p))

(* --- fault-injection degradation curve ----------------------------------------- *)

(* Performance degrades gracefully as the interconnect gets worse: scale the
   chaos profile's event rates from 0 to full strength and plot completion
   time and recovery traffic.  The protocol must absorb every intensity —
   zero wedged runs — with cost, not correctness, as the casualty. *)
let degrade () =
  hr "Degradation under interconnect faults (chaos profile, seeds 0-9)";
  let workloads =
    [
      ("fig3", fun () -> Workload.fig3_handoff ());
      ("locks", fun () -> Workload.critical_sections ());
      ("barrier", fun () -> Workload.spin_barrier ());
    ]
  in
  let intensities = [ 0; 125; 250; 500; 750; 1000 ] in
  let seeds = 10 in
  let wedged = ref 0 in
  List.iter
    (fun (name, mk) ->
      Fmt.pr "@.  %s (def2, mean over %d seeds):@." name seeds;
      Fmt.pr "    %9s %8s %12s %7s %7s %6s@." "intensity" "cycles" "retransmits"
        "nacks" "dups" "spins";
      List.iter
        (fun permille ->
          let profile = Fault.scale Fault.chaos ~permille in
          let cyc = ref 0
          and retr = ref 0
          and nacks = ref 0
          and dups = ref 0
          and spins = ref 0 in
          for seed = 0 to seeds - 1 do
            let cfg =
              Sim_config.make ~faults:profile ~fault_seed:seed ()
            in
            match Sim_run.try_run ~cfg Cpu.Def2 (mk ()) with
            | Error f ->
                incr wedged;
                Fmt.pr "    WEDGED at intensity %d seed %d: %s@." permille seed
                  (Sim_run.failure_kind f)
            | Ok r ->
                cyc := !cyc + r.Sim_run.total_cycles;
                retr := !retr + r.Sim_run.retransmits;
                nacks := !nacks + r.Sim_run.nacks;
                dups := !dups + r.Sim_run.dups_suppressed;
                spins :=
                  !spins
                  + Array.fold_left
                      (fun a s -> a + s.Cpu.spin_iters)
                      0 r.Sim_run.proc_stats
          done;
          Fmt.pr "    %9d %8d %12d %7d %7d %6d@." permille (!cyc / seeds)
            (!retr / seeds) (!nacks / seeds) (!dups / seeds) (!spins / seeds))
        intensities)
    workloads;
  Fmt.pr "@.  wedged runs across the whole sweep: %d (must be 0)@." !wedged

let all () =
  fig1 ();
  fig2 ();
  fig3 ();
  sec6_def1 ();
  sec6_spin ();
  sweep ();
  appendix ();
  ablate ();
  degrade ()
