#!/usr/bin/env python3
"""Bench regression gate.

Compares a freshly generated `bench json` dump against the committed
BENCH_*.json baseline and fails when the fresh run expands more states
than the baseline allows, when a baseline entry disappeared, or when the
fresh run grew entries the baseline does not know (pass --allow-new for
the commit that intentionally introduces them, then refresh the
baseline).

Entries are typed by their "kind" field (entries without one are treated
as "explore", which is what every pre-kind baseline contained):

  explore / sym / cache / service
                          carry a real states_expanded count — gated,
                          since state counts are deterministic per
                          (kind, name, machine, domains) and any growth
                          is a real regression (a reduction oracle that
                          stopped firing, a key that stopped
                          canonicalizing);
  overhead                carry payload + overhead_pct, NOT a state
                          count — wall-clock overhead pairs are reported
                          for context but never gated (CI machines are
                          too noisy);
  sim                     timing-simulator rows: events is tolerance-
                          gated like a state count, while total_cycles,
                          finals_crc and stalls_crc are bit-exact —
                          simulation is deterministic, so any drift in
                          simulated time or settled memory against the
                          baseline is a timing regression and fails
                          hard.  The naive reference rows (machine
                          "*-naive") must also shed at least
                          --sim-shed-floor x the events of their parked
                          twin, re-proving the engine-scaling claim on
                          every run.

Additionally, sym rows in the fresh run are validated on their own
terms: every row's outcomes_equal must be true (the reduction may never
change the outcome set), and each benchmarked program must show at least
one machine at >= --sym-floor percent state reduction.  Service rows
(the differential-fuzzer oracle) must report disagreements == 0: the
three engines agreeing is a soundness invariant, not a performance
number, so a single disagreement fails the gate outright.

Every failure mode names the offending (name, machine) pair; a malformed
entry is an exit-2 diagnostic, never a KeyError traceback.

Usage: bench_gate.py BASELINE.json FRESH.json [--tolerance 0.10]
                     [--allow-new] [--sym-floor 30] [--sim-shed-floor 5]
                     [--kinds sim,service]
Exit 0 on pass, 1 on regression or unexplained entry churn, 2 on
unusable input.
"""

import argparse
import json
import sys


# Fields every entry must carry, then per-kind obligations on top.
COMMON_FIELDS = ("name", "machine", "domains")
KIND_FIELDS = {
    "explore": ("states_expanded",),
    "cache": ("states_expanded",),
    "sym": ("states_expanded", "states_nosym", "reduction_pct",
            "outcomes_equal"),
    "overhead": ("payload", "overhead_pct"),
    "service": ("states_expanded", "programs", "checks", "disagreements"),
    "sim": ("events", "total_cycles", "finals_crc", "stalls_crc"),
}
# Kinds whose deterministic count is tolerance-gated against the baseline.
GATED_KINDS = ("explore", "cache", "sym", "service", "sim")
# The deterministic count field per kind.
COUNT_FIELD = {"overhead": "payload", "sim": "events"}
# sim fields that must match the baseline bit for bit: simulated time and
# settled behaviour are deterministic, so any drift is a real regression.
SIM_EXACT_FIELDS = ("total_cycles", "finals_crc", "stalls_crc")


def entry_kind(e):
    return e.get("kind", "explore")


def load_entries(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or not isinstance(doc.get("entries"), list):
        print(f"bench gate: {path}: expected an object with an 'entries' "
              f"list", file=sys.stderr)
        sys.exit(2)
    entries = {}
    for i, e in enumerate(doc["entries"]):
        if not isinstance(e, dict):
            print(f"bench gate: {path}: entry #{i} is not an object",
                  file=sys.stderr)
            sys.exit(2)
        kind = entry_kind(e)
        if kind not in KIND_FIELDS:
            print(f"bench gate: {path}: entry #{i} has unknown kind "
                  f"{kind!r}", file=sys.stderr)
            sys.exit(2)
        required = COMMON_FIELDS + KIND_FIELDS[kind]
        missing = [f for f in required if f not in e]
        if missing:
            ident = f"{e.get('name', '?')}/{e.get('machine', '?')}"
            print(f"bench gate: {path}: entry #{i} ({ident}, kind {kind}) "
                  f"lacks field(s): {', '.join(missing)}", file=sys.stderr)
            sys.exit(2)
        count_field = COUNT_FIELD.get(kind, "states_expanded")
        if not isinstance(e[count_field], int):
            print(f"bench gate: {path}: entry #{i} "
                  f"({e['name']}/{e['machine']}): {count_field} is not "
                  f"an integer", file=sys.stderr)
            sys.exit(2)
        key = (kind, e["name"], e["machine"], e["domains"])
        if key in entries:
            print(f"bench gate: duplicate entry {key} in {path}",
                  file=sys.stderr)
            sys.exit(2)
        entries[key] = e
    if not entries:
        print(f"bench gate: {path} has no entries", file=sys.stderr)
        sys.exit(2)
    return entries


def check_sym_rows(new, floor, failures):
    """Fresh-run obligations on the symmetry differential rows."""
    rows = [e for key, e in new.items() if key[0] == "sym"]
    if not rows:
        failures.append(
            "no sym entries in the fresh run: the symmetry differential "
            "must be benchmarked (did `bench json` lose json_sym_entries?)")
        return
    best = {}
    for e in rows:
        label = f"sym {e['name']}/{e['machine']}"
        if e["outcomes_equal"] is not True:
            failures.append(
                f"{label}: outcomes_equal is {e['outcomes_equal']!r} — "
                f"symmetry reduction changed the outcome set (soundness "
                f"bug, do not ship)")
        pct = e["reduction_pct"]
        if not isinstance(pct, (int, float)):
            failures.append(f"{label}: reduction_pct is not a number")
            continue
        prev = best.get(e["name"])
        if prev is None or pct > prev:
            best[e["name"]] = pct
    for name, pct in sorted(best.items()):
        if pct < floor:
            failures.append(
                f"sym {name}: best reduction across machines is "
                f"{pct:.1f}%, below the {floor:.0f}% floor")
        else:
            print(f"bench gate: sym {name}: best reduction {pct:.1f}% "
                  f"(floor {floor:.0f}%)")


def check_sim_rows(old, new, shed_floor, failures):
    """Simulator obligations: bit-exact simulated behaviour against the
    baseline, and the naive reference rows re-proving the events-shed
    claim against their parked twins."""
    for key in sorted(old):
        if key[0] != "sim" or key not in new:
            continue
        _, name, machine, domains = key
        label = f"sim {name}/{machine} n={domains}"
        for field in SIM_EXACT_FIELDS:
            o, n = old[key][field], new[key][field]
            if o != n:
                failures.append(
                    f"{label}: {field} {o} -> {n} — simulated behaviour "
                    f"diverged from the baseline (timing regression or an "
                    f"engine-order bug; if the change is deliberate, "
                    f"refresh the committed baseline)")
    naive = {k: e for k, e in new.items()
             if k[0] == "sim" and k[2].endswith("-naive")}
    for (kind, name, machine, domains), e in sorted(naive.items()):
        twin = (kind, name, machine[: -len("-naive")], domains)
        label = f"sim {name}/{machine} n={domains}"
        if twin not in new:
            failures.append(f"{label}: no parked twin row "
                            f"{machine[: -len('-naive')]} to compare against")
            continue
        parked = new[twin]["events"]
        ratio = e["events"] / parked if parked else float("inf")
        if ratio < shed_floor:
            failures.append(
                f"{label}: parked run executes {parked} events vs {e['events']} "
                f"naive — only {ratio:.1f}x shed, below the "
                f"{shed_floor:.0f}x floor (spin parking or batching "
                f"stopped firing?)")
        else:
            print(f"bench gate: {label}: {e['events']} naive vs {parked} "
                  f"parked events ({ratio:.0f}x shed, floor "
                  f"{shed_floor:.0f}x)")


def check_service_rows(new, failures):
    """Fresh-run obligations on the differential-fuzzer rows."""
    rows = [e for key, e in new.items() if key[0] == "service"]
    for e in rows:
        label = f"service {e['name']}/{e['machine']}"
        d = e["disagreements"]
        if d != 0:
            failures.append(
                f"{label}: {d} oracle disagreement(s) — an engine "
                f"(machine, axiomatic model, or simulator) diverged on a "
                f"generated program (soundness bug, do not ship; rerun "
                f"`weakord fuzz` with --quarantine for the dossier)")
        else:
            print(f"bench gate: {label}: {e['programs']} programs, "
                  f"{e['checks']} checks, 0 disagreements")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional state-count growth "
                         "(default 0.10)")
    ap.add_argument("--allow-new", action="store_true",
                    help="tolerate fresh entries absent from the baseline "
                         "(for the commit that introduces them)")
    ap.add_argument("--sym-floor", type=float, default=30.0,
                    help="minimum best-machine state reduction percent "
                         "each sym-benchmarked program must reach "
                         "(default 30)")
    ap.add_argument("--sim-shed-floor", type=float, default=5.0,
                    help="minimum naive/parked event ratio each sim "
                         "*-naive row must show against its parked twin "
                         "(default 5)")
    ap.add_argument("--kinds", default=None,
                    help="comma-separated kinds to gate (default: all); "
                         "e.g. --kinds sim for the dedicated sim-scale "
                         "CI job against a full baseline")
    args = ap.parse_args()

    old = load_entries(args.baseline)
    new = load_entries(args.fresh)
    if args.kinds is not None:
        kinds = {k.strip() for k in args.kinds.split(",") if k.strip()}
        unknown = kinds - set(KIND_FIELDS)
        if unknown:
            print(f"bench gate: unknown kind(s) in --kinds: "
                  f"{', '.join(sorted(unknown))}", file=sys.stderr)
            sys.exit(2)
        old = {k: e for k, e in old.items() if k[0] in kinds}
        new = {k: e for k, e in new.items() if k[0] in kinds}
        if not old or not new:
            print(f"bench gate: --kinds {args.kinds} leaves no entries to "
                  f"compare", file=sys.stderr)
            sys.exit(2)
    else:
        kinds = set(KIND_FIELDS)

    failures = []
    for key in sorted(old):
        kind, name, machine, domains = key
        label = f"{name}/{machine} d={domains}"
        if key not in new:
            failures.append(
                f"{label}: baseline entry vanished from the fresh run "
                f"(renamed or dropped benchmark? refresh the baseline)")
            continue
        if kind not in GATED_KINDS:
            continue
        count_field = COUNT_FIELD.get(kind, "states_expanded")
        o, n = old[key][count_field], new[key][count_field]
        limit = o * (1.0 + args.tolerance)
        if n > limit:
            failures.append(
                f"{label}: {count_field} {o} -> {n} "
                f"(+{(n - o) / o * 100:.1f}%, limit +{args.tolerance:.0%})")
        elif n != o:
            print(f"bench gate: note: {label}: {count_field} {o} -> {n} "
                  f"(within tolerance)")

    added = sorted(set(new) - set(old))
    if added:
        names = ", ".join(f"{n}/{m} d={d}" for _, n, m, d in added)
        if args.allow_new:
            print(f"bench gate: note: new entries not in baseline "
                  f"(allowed): {names}")
        else:
            failures.append(
                f"entries not in baseline: {names} (refresh the committed "
                f"baseline, or pass --allow-new for the introducing commit)")

    if "sym" in kinds:
        check_sym_rows(new, args.sym_floor, failures)
    if "service" in kinds:
        check_service_rows(new, failures)
    if "sim" in kinds:
        check_sim_rows(old, new, args.sim_shed_floor, failures)

    if failures:
        print(f"bench gate: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"bench gate: ok ({len(old)} baseline entries checked)")


if __name__ == "__main__":
    main()
