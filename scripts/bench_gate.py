#!/usr/bin/env python3
"""Bench regression gate.

Compares a freshly generated `bench json` dump against the committed
BENCH_*.json baseline and fails when the fresh run expands more states
than the baseline allows, when a baseline entry disappeared, or when the
fresh run grew entries the baseline does not know (pass --allow-new for
the commit that intentionally introduces them, then refresh the
baseline).

Only state counts are gated: they are deterministic per (test, machine,
domains) triple, so any growth is a real regression (a reduction oracle
that stopped firing, a key that stopped canonicalizing).  Wall-clock is
reported for context but never gates — CI machines are too noisy.

Every failure mode names the offending (name, machine) pair; a malformed
entry is an exit-2 diagnostic, never a KeyError traceback.

Usage: bench_gate.py BASELINE.json FRESH.json [--tolerance 0.10]
                     [--allow-new]
Exit 0 on pass, 1 on regression or unexplained entry churn, 2 on
unusable input.
"""

import argparse
import json
import sys


REQUIRED_FIELDS = ("name", "machine", "domains", "states_expanded")


def load_entries(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or not isinstance(doc.get("entries"), list):
        print(f"bench gate: {path}: expected an object with an 'entries' "
              f"list", file=sys.stderr)
        sys.exit(2)
    entries = {}
    for i, e in enumerate(doc["entries"]):
        if not isinstance(e, dict):
            print(f"bench gate: {path}: entry #{i} is not an object",
                  file=sys.stderr)
            sys.exit(2)
        missing = [f for f in REQUIRED_FIELDS if f not in e]
        if missing:
            ident = f"{e.get('name', '?')}/{e.get('machine', '?')}"
            print(f"bench gate: {path}: entry #{i} ({ident}) lacks "
                  f"field(s): {', '.join(missing)}", file=sys.stderr)
            sys.exit(2)
        if not isinstance(e["states_expanded"], int):
            print(f"bench gate: {path}: entry #{i} "
                  f"({e['name']}/{e['machine']}): states_expanded is not "
                  f"an integer", file=sys.stderr)
            sys.exit(2)
        key = (e["name"], e["machine"], e["domains"])
        if key in entries:
            print(f"bench gate: duplicate entry {key} in {path}",
                  file=sys.stderr)
            sys.exit(2)
        entries[key] = e
    if not entries:
        print(f"bench gate: {path} has no entries", file=sys.stderr)
        sys.exit(2)
    return entries


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional state-count growth "
                         "(default 0.10)")
    ap.add_argument("--allow-new", action="store_true",
                    help="tolerate fresh entries absent from the baseline "
                         "(for the commit that introduces them)")
    args = ap.parse_args()

    old = load_entries(args.baseline)
    new = load_entries(args.fresh)

    failures = []
    for key in sorted(old):
        name, machine, domains = key
        label = f"{name}/{machine} d={domains}"
        if key not in new:
            failures.append(
                f"{label}: baseline entry vanished from the fresh run "
                f"(renamed or dropped benchmark? refresh the baseline)")
            continue
        o, n = old[key]["states_expanded"], new[key]["states_expanded"]
        limit = o * (1.0 + args.tolerance)
        if n > limit:
            failures.append(
                f"{label}: states_expanded {o} -> {n} "
                f"(+{(n - o) / o * 100:.1f}%, limit +{args.tolerance:.0%})")
        elif n != o:
            print(f"bench gate: note: {label}: states {o} -> {n} "
                  f"(within tolerance)")

    added = sorted(set(new) - set(old))
    if added:
        names = ", ".join(f"{n}/{m} d={d}" for n, m, d in added)
        if args.allow_new:
            print(f"bench gate: note: new entries not in baseline "
                  f"(allowed): {names}")
        else:
            failures.append(
                f"entries not in baseline: {names} (refresh the committed "
                f"baseline, or pass --allow-new for the introducing commit)")

    if failures:
        print(f"bench gate: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"bench gate: ok ({len(old)} baseline entries checked)")


if __name__ == "__main__":
    main()
