#!/usr/bin/env python3
"""Bench regression gate.

Compares a freshly generated `bench json` dump against the committed
BENCH_*.json baseline and fails when the fresh run expands more states
than the baseline allows, or when a baseline entry disappeared.

Only state counts are gated: they are deterministic per (test, machine,
domains) triple, so any growth is a real regression (a reduction oracle
that stopped firing, a key that stopped canonicalizing).  Wall-clock is
reported for context but never gates — CI machines are too noisy.

Usage: bench_gate.py BASELINE.json FRESH.json [--tolerance 0.10]
Exit 0 on pass, 1 on regression, 2 on unusable input.
"""

import argparse
import json
import sys


def load_entries(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    entries = {}
    for e in doc.get("entries", []):
        key = (e["name"], e["machine"], e["domains"])
        if key in entries:
            print(f"bench gate: duplicate entry {key} in {path}",
                  file=sys.stderr)
            sys.exit(2)
        entries[key] = e
    if not entries:
        print(f"bench gate: {path} has no entries", file=sys.stderr)
        sys.exit(2)
    return entries


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional state-count growth "
                         "(default 0.10)")
    args = ap.parse_args()

    old = load_entries(args.baseline)
    new = load_entries(args.fresh)

    failures = []
    for key in sorted(old):
        name, machine, domains = key
        label = f"{name}/{machine} d={domains}"
        if key not in new:
            failures.append(f"{label}: entry missing from fresh run")
            continue
        o, n = old[key]["states_expanded"], new[key]["states_expanded"]
        limit = o * (1.0 + args.tolerance)
        if n > limit:
            failures.append(
                f"{label}: states_expanded {o} -> {n} "
                f"(+{(n - o) / o * 100:.1f}%, limit +{args.tolerance:.0%})")
        elif n != o:
            print(f"bench gate: note: {label}: states {o} -> {n} "
                  f"(within tolerance)")

    added = sorted(set(new) - set(old))
    if added:
        names = ", ".join(f"{n}/{m} d={d}" for n, m, d in added)
        print(f"bench gate: note: new entries not in baseline: {names}")

    if failures:
        print(f"bench gate: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"bench gate: ok ({len(old)} baseline entries checked)")


if __name__ == "__main__":
    main()
